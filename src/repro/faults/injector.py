"""The fault injector: applies a schedule's events to a live engine.

The :class:`FaultInjector` sits between a :class:`~repro.faults.schedule.
FaultSchedule` and a :class:`~repro.serving.engine.ServingEngine`.  Once
per engine iteration (``advance_to``) it applies every fault whose time
has come and heals every transient fault whose duration has elapsed,
updating a :class:`ClusterHealth` model:

* **DEVICE_LOSS** — the device's share of the KV pool is withheld, its
  in-flight requests are killed and handed to the recovery policy, and
  all compute is squeezed onto the survivors;
* **EXPERT_SHARD_LOSS** — the EP rank's in-flight requests are killed;
  subsequent traffic reroutes to surviving replicas (priced through the
  surviving-placement imbalance) or, with no replica coverage, the router
  degrades to a reduced top-k / the loss becomes unrecoverable;
* **LINK_DEGRADE** — the interconnect share of every iteration rides a
  slower fabric (NVLink→PCIe-class slowdown);
* **KV_PRESSURE** — a fraction of the KV block pool is reserved until the
  spike heals.

Slowdowns are priced through the perf model's per-component breakdown
(:meth:`adjust`), so an engine with no armed schedule is bit-identical to
one with no injector at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.faults.policies import DegradePolicy, RecoveryPolicy, RetryPolicy
from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule
from repro.parallel.expert_parallel import ReplicatedExpertPlacement
from repro.parallel.placement_opt import surviving_imbalance
from repro.serving.events import Event, EventType
from repro.serving.request import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.instrument import Instrumentation
    from repro.serving.engine import ServingEngine

__all__ = ["FaultDomain", "ClusterHealth", "FaultInjector"]

_COMPUTE_COMPONENTS = frozenset({
    "attention", "router", "expert_ffn", "dense_ffn", "embedding",
    "lm_head", "vision_encode",
})
"""Breakdown components that run on the (surviving) devices and therefore
slow down when devices are lost."""


@dataclass(frozen=True)
class FaultDomain:
    """The deployment shape faults land on.

    ``target`` fields of :class:`FaultEvent` are interpreted modulo
    ``num_devices`` (device faults) / ``ep`` (shard faults).  In-flight
    requests are pinned to devices by ``request_id % num_devices`` (and to
    EP ranks by ``request_id % ep``) — a deterministic stand-in for the
    data-parallel router's request placement.
    """

    num_devices: int = 1
    ep: int = 1
    top_k: int = 0
    """Routed experts per token (0: MoE routing not modelled — shard loss
    without replicas is then always unrecoverable)."""
    placement: ReplicatedExpertPlacement | None = None
    """Expert replication across the ``ep`` ranks; ``None`` means one copy
    per expert (any shard loss loses coverage)."""

    def __post_init__(self) -> None:
        if self.num_devices < 1 or self.ep < 1:
            raise ValueError("num_devices and ep must be >= 1")
        if self.top_k < 0:
            raise ValueError("top_k must be non-negative")
        if self.placement is not None and self.placement.num_devices != self.ep:
            raise ValueError(
                f"placement spans {self.placement.num_devices} devices but "
                f"the domain has ep={self.ep}"
            )


@dataclass
class ClusterHealth:
    """Live health of the simulated deployment (mutated by the injector)."""

    num_devices: int
    lost_devices: set[int] = field(default_factory=set)
    lost_ep_ranks: set[int] = field(default_factory=set)
    link_slowdown: float = 1.0
    kv_pressure_fraction: float = 0.0
    effective_top_k: int = 0
    unrecoverable: list[str] = field(default_factory=list)
    """Reasons the deployment can no longer serve at full fidelity
    (expert coverage lost with no degrade headroom, all devices lost)."""

    @property
    def num_surviving(self) -> int:
        return self.num_devices - len(self.lost_devices)

    @property
    def is_degraded(self) -> bool:
        return bool(self.lost_devices or self.lost_ep_ranks
                    or self.link_slowdown > 1.0
                    or self.kv_pressure_fraction > 0.0)

    def summary(self) -> dict:
        return {
            "num_devices": self.num_devices,
            "num_surviving": self.num_surviving,
            "lost_devices": sorted(self.lost_devices),
            "lost_ep_ranks": sorted(self.lost_ep_ranks),
            "link_slowdown": self.link_slowdown,
            "kv_pressure_fraction": self.kv_pressure_fraction,
            "effective_top_k": self.effective_top_k,
            "unrecoverable": list(self.unrecoverable),
        }


class FaultInjector:
    """Interprets a :class:`FaultSchedule` against a running engine."""

    def __init__(
        self,
        schedule: FaultSchedule,
        domain: FaultDomain | None = None,
        policy: RecoveryPolicy | None = None,
        degrade: DegradePolicy | None = None,
        instrumentation: "Instrumentation | None" = None,
    ) -> None:
        self.schedule = schedule
        self.domain = domain or FaultDomain()
        self.policy = policy or RetryPolicy()
        self.degrade = degrade
        self.obs = instrumentation
        self.health = ClusterHealth(
            num_devices=self.domain.num_devices,
            effective_top_k=self.domain.top_k,
        )
        self._cursor = 0.0
        self._pending_heals: list[FaultEvent] = []
        self._kv_reservations: list[tuple[FaultEvent, int]] = []
        self._device_loss_count: dict[int, int] = {}
        self._rank_loss_count: dict[int, int] = {}
        self._link_events: list[FaultEvent] = []
        # per-expert loads for the rerouting-imbalance price; uniform (the
        # conservative default) unless the placement says otherwise
        self._loads = (np.ones(self.domain.placement.num_experts)
                       if self.domain.placement is not None else None)
        self._imbalance = 1.0
        self.counts: dict[str, int] = {
            "faults_applied": 0, "recoveries": 0, "requests_killed": 0,
            "retries": 0, "failures": 0, "degrades": 0,
        }

    # ------------------------------------------------------------------ #
    # schedule interpretation
    # ------------------------------------------------------------------ #

    @property
    def active(self) -> bool:
        """Whether any fault can ever fire (unarmed ⇒ the engine's default
        path is untouched, bit for bit)."""
        return self.schedule.is_armed

    def next_event_time(self, after: float) -> float | None:
        """Next fault or heal strictly after ``after`` (for idle-advance
        when the engine is starved by a transient fault)."""
        return self.schedule.next_event_time(after)

    def advance_to(self, now: float, engine: "ServingEngine") -> None:
        """Apply all faults due and heals elapsed in ``(cursor, now]``,
        in deterministic time order (heals before faults at a tie, so a
        fault landing exactly when another heals sees the healed state).

        Events are processed one at a time so a transient fault whose
        whole lifetime fits inside a single polling window still heals —
        and heals in the right order relative to later faults in the same
        window."""
        faults = list(self.schedule.events_between(self._cursor, now))
        i = 0
        while True:
            candidates: list[tuple[float, int, FaultEvent]] = []
            due_heals = [e for e in self._pending_heals if e.heal_time <= now]
            if due_heals:
                heal = min(due_heals, key=lambda e: (e.heal_time,
                                                     e.kind.value, e.target))
                candidates.append((heal.heal_time, 0, heal))
            if i < len(faults):
                candidates.append((faults[i].time, 1, faults[i]))
            if not candidates:
                break
            _, is_fault, event = min(
                candidates,
                key=lambda item: (item[0], item[1], item[2].kind.value,
                                  item[2].target),
            )
            if is_fault:
                i += 1
                self._apply(event, now, engine)
            else:
                self._heal(event, now, engine)
        self._cursor = max(self._cursor, now)

    def _apply(self, event: FaultEvent, now: float, engine: "ServingEngine") -> None:
        self.counts["faults_applied"] += 1
        if not event.is_permanent:
            self._pending_heals.append(event)
        handlers = {
            FaultKind.DEVICE_LOSS: self._apply_device_loss,
            FaultKind.EXPERT_SHARD_LOSS: self._apply_shard_loss,
            FaultKind.LINK_DEGRADE: self._apply_link_degrade,
            FaultKind.KV_PRESSURE: self._apply_kv_pressure,
        }
        handler = handlers.get(event.kind)
        if handler is None:
            raise ValueError(
                f"{event.kind.value} is not an engine-scope fault — "
                "fleet-scope kinds (REPLICA_LOSS) belong in "
                "FleetConfig.replica_kills, not an engine injector")
        detail = handler(event, now, engine)
        engine.log.record(Event(now, EventType.FAULT,
                                detail=detail or event.describe()))
        obs = self.obs
        if obs is not None and obs.active:
            obs.tracer.instant(f"fault.{event.kind.value}", now, cat="fault",
                               target=event.target, magnitude=event.magnitude)
            obs.metrics.counter(
                "faults_injected_total", "fault events applied to the engine",
                labels={"kind": event.kind.value},
            ).inc()

    def _heal(self, event: FaultEvent, now: float, engine: "ServingEngine") -> None:
        self._pending_heals.remove(event)
        self.counts["recoveries"] += 1
        if event.kind is FaultKind.DEVICE_LOSS:
            device = event.target % self.domain.num_devices
            self._device_loss_count[device] -= 1
            if self._device_loss_count[device] == 0:
                self.health.lost_devices.discard(device)
            self._release_reservation(event, engine)
        elif event.kind is FaultKind.EXPERT_SHARD_LOSS:
            rank = event.target % self.domain.ep
            self._rank_loss_count[rank] -= 1
            if self._rank_loss_count[rank] == 0:
                self.health.lost_ep_ranks.discard(rank)
            self._refresh_expert_state()
        elif event.kind is FaultKind.LINK_DEGRADE:
            self._link_events.remove(event)
            self._refresh_link_slowdown()
        elif event.kind is FaultKind.KV_PRESSURE:
            self._release_reservation(event, engine)
            self._refresh_kv_pressure(engine)
        engine.log.record(Event(now, EventType.RECOVERY,
                                detail=f"healed: {event.describe()}"))
        obs = self.obs
        if obs is not None and obs.active:
            obs.tracer.instant(f"heal.{event.kind.value}", now, cat="fault",
                               target=event.target)
            obs.metrics.counter(
                "fault_recoveries_total", "transient faults healed",
                labels={"kind": event.kind.value},
            ).inc()

    # ------------------------------------------------------------------ #
    # per-kind handlers
    # ------------------------------------------------------------------ #

    def _apply_device_loss(self, event: FaultEvent, now: float,
                           engine: "ServingEngine") -> str:
        device = event.target % self.domain.num_devices
        self._device_loss_count[device] = \
            self._device_loss_count.get(device, 0) + 1
        fresh = device not in self.health.lost_devices
        self.health.lost_devices.add(device)
        if fresh:
            # the lost device's KV shard is gone: withhold its share
            share = engine.kv.num_blocks // self.domain.num_devices
            engine.kv.reserve(share)
            self._kv_reservations.append((event, share))
        if self.health.num_surviving == 0:
            reason = "all devices lost"
            if reason not in self.health.unrecoverable:
                self.health.unrecoverable.append(reason)
            self._kill(engine, now, lambda r: True,
                       f"device {device} lost ({reason})", force_fail=True)
            return f"device {device} lost — no survivors"
        self._kill(
            engine, now,
            lambda r: r.request_id % self.domain.num_devices == device,
            f"device {device} lost",
        )
        return (f"device {device} lost "
                f"({self.health.num_surviving}/{self.domain.num_devices} "
                "surviving)")

    def _apply_shard_loss(self, event: FaultEvent, now: float,
                          engine: "ServingEngine") -> str:
        rank = event.target % self.domain.ep
        self._rank_loss_count[rank] = self._rank_loss_count.get(rank, 0) + 1
        self.health.lost_ep_ranks.add(rank)
        self._kill(
            engine, now,
            lambda r: r.request_id % self.domain.ep == rank,
            f"expert shards on EP rank {rank} lost",
        )
        self._refresh_expert_state()
        return (f"EP rank {rank} shards lost "
                f"(effective top-k {self.health.effective_top_k}, "
                f"reroute imbalance {self._imbalance:.3f})")

    def _apply_link_degrade(self, event: FaultEvent, now: float,
                            engine: "ServingEngine") -> str:
        self._link_events.append(event)
        self._refresh_link_slowdown()
        return (f"interconnect degraded {self.health.link_slowdown:.2f}x "
                "(NVLink→PCIe-class fallback)")

    def _apply_kv_pressure(self, event: FaultEvent, now: float,
                           engine: "ServingEngine") -> str:
        blocks = int(event.magnitude * engine.kv.num_blocks)
        engine.kv.reserve(blocks)
        self._kv_reservations.append((event, blocks))
        self._refresh_kv_pressure(engine)
        return (f"KV pressure spike: {blocks} blocks withheld "
                f"({self.health.kv_pressure_fraction:.0%} of pool reserved)")

    def _release_reservation(self, event: FaultEvent,
                             engine: "ServingEngine") -> None:
        for i, (e, blocks) in enumerate(self._kv_reservations):
            if e is event:
                engine.kv.release_reserved(blocks)
                del self._kv_reservations[i]
                return

    def _refresh_link_slowdown(self) -> None:
        self.health.link_slowdown = max(
            [1.0] + [e.magnitude for e in self._link_events])

    def _refresh_kv_pressure(self, engine: "ServingEngine") -> None:
        pressure = sum(b for e, b in self._kv_reservations
                       if e.kind is FaultKind.KV_PRESSURE)
        self.health.kv_pressure_fraction = pressure / engine.kv.num_blocks

    def _refresh_expert_state(self) -> None:
        """Recompute rerouting imbalance / degraded top-k / coverage after
        the set of lost EP ranks changed."""
        domain, health = self.domain, self.health
        if not health.lost_ep_ranks:
            self._imbalance = 1.0
            health.effective_top_k = domain.top_k
            return
        if domain.placement is None:
            # single-copy experts: every shard loss loses coverage
            self._imbalance = 1.0
            self._degrade_or_give_up(
                f"EP ranks {sorted(health.lost_ep_ranks)} lost with no "
                "expert replication")
            return
        imbalance, lost = surviving_imbalance(
            domain.placement, self._loads, health.lost_ep_ranks)
        self._imbalance = imbalance if np.isfinite(imbalance) else 1.0
        if lost:
            self._degrade_or_give_up(
                f"experts {lost[:8]}{'...' if len(lost) > 8 else ''} have no "
                "surviving replica")
        else:
            health.effective_top_k = domain.top_k

    def _degrade_or_give_up(self, reason: str) -> None:
        health = self.health
        if self.degrade is not None and health.effective_top_k > 0:
            reduced = self.degrade.degraded_top_k(self.domain.top_k)
            if reduced < self.domain.top_k:
                if health.effective_top_k != reduced:
                    self.counts["degrades"] += 1
                health.effective_top_k = reduced
                return
        if reason not in health.unrecoverable:
            health.unrecoverable.append(reason)

    # ------------------------------------------------------------------ #
    # request kill / recovery
    # ------------------------------------------------------------------ #

    def _kill(self, engine: "ServingEngine", now: float,
              pred: Callable[[Request], bool], reason: str,
              force_fail: bool = False) -> None:
        """Evict every in-flight request matching ``pred`` and route it
        through the recovery policy (or straight to failure)."""
        victims = [r for r in engine.in_flight() if pred(r)]
        if not victims:
            return
        obs = self.obs
        if obs is not None and not obs.active:
            obs = None
        retried: list[int] = []
        failed: list[int] = []
        for req in victims:
            engine.scheduler.evict(req)
            self.counts["requests_killed"] += 1
            if force_fail:
                self._fail(req, reason, failed)
                if obs is not None:
                    self._observe_fail(obs, req, now, reason)
                continue
            decision = self.policy.on_request_killed(req, now, reason)
            if decision.action == "retry":
                req.reset_for_retry(decision.retry_at)
                engine.requeue(req)
                retried.append(req.request_id)
                self.counts["retries"] += 1
                if obs is not None and obs.reqtrace is not None:
                    obs.reqtrace.on_fault_kill(req, now, reason,
                                               decision.retry_at)
            else:
                self._fail(req, decision.reason, failed)
                if obs is not None:
                    self._observe_fail(obs, req, now, decision.reason)
        if retried:
            engine.log.record(Event(now, EventType.RETRY, tuple(retried),
                                    detail=reason))
        if failed:
            engine.log.record(Event(now, EventType.FAIL, tuple(failed),
                                    detail=reason))
        obs = self.obs
        if obs is not None and obs.active:
            if retried:
                obs.metrics.counter(
                    "fault_retries_total",
                    "requests killed by faults and resubmitted",
                ).inc(len(retried))
            if failed:
                obs.metrics.counter(
                    "fault_failures_total",
                    "requests terminally failed by faults",
                ).inc(len(failed))

    def _fail(self, req: Request, reason: str, failed: list[int]) -> None:
        req.fail(reason)
        failed.append(req.request_id)
        self.counts["failures"] += 1

    @staticmethod
    def _observe_fail(obs, req: Request, now: float, reason: str) -> None:
        """Report one terminally fault-failed request to the request
        tracer and the SLO tracker."""
        if obs.reqtrace is not None:
            obs.reqtrace.on_fail(req, now, reason=reason)
        if obs.slo is not None:
            obs.slo.on_request_terminal(req, now)

    # ------------------------------------------------------------------ #
    # duration pricing
    # ------------------------------------------------------------------ #

    @property
    def needs_components(self) -> bool:
        """Whether the current health requires the per-component breakdown
        to price this iteration (False on the healthy path, keeping the
        default engine byte-identical)."""
        health = self.health
        return (health.link_slowdown > 1.0
                or bool(health.lost_devices)
                or bool(health.lost_ep_ranks)
                or (self.domain.top_k > 0
                    and health.effective_top_k != self.domain.top_k))

    def adjust(self, duration_s: float,
               components: dict[str, float] | None) -> float:
        """Re-price one iteration under the current degraded health.

        ``components`` (the perf model's per-component decomposition of
        ``duration_s``) is scaled in place — interconnect rides the degraded
        link, compute components squeeze onto the surviving devices, and
        the expert FFN additionally pays the rerouting imbalance (or gets
        cheaper under reduced top-k).  Returns the adjusted duration; the
        unattributed remainder of ``duration_s`` is preserved as-is.
        """
        if components is None or not self.needs_components:
            return duration_s
        health = self.health
        compute_scale = 1.0
        if health.lost_devices and health.num_surviving > 0:
            compute_scale = self.domain.num_devices / health.num_surviving
        topk_scale = 1.0
        if self.domain.top_k > 0 and health.effective_top_k != self.domain.top_k:
            topk_scale = health.effective_top_k / self.domain.top_k
        extra = 0.0
        for name, value in components.items():
            mult = 1.0
            if name == "interconnect":
                mult *= health.link_slowdown
            elif name in _COMPUTE_COMPONENTS:
                mult *= compute_scale
            if name in ("expert_ffn", "router"):
                mult *= self._imbalance * topk_scale
            if name == "interconnect":
                mult *= topk_scale  # fewer routed experts, less dispatch
            if mult != 1.0:
                components[name] = value * mult
                extra += value * (mult - 1.0)
        return duration_s + extra

    # ------------------------------------------------------------------ #

    def summary(self) -> dict:
        """Run outcome for experiments / the ``chaos`` CLI."""
        return {**self.counts, "health": self.health.summary()}
