"""Seeded fault schedules: what breaks, when, and for how long.

A :class:`FaultSchedule` is generated entirely at construction from a
``numpy`` PRNG seed — a pure function of ``(seed, horizon, rates)`` with no
wall-clock or iteration-order dependence — so the same seed always injects
the same faults at the same simulated times, and two chaos runs with one
seed are bit-identical.  Event times are Poisson arrivals per fault kind;
durations are exponential with a per-kind mean (a fraction of events are
permanent, modelling hardware that stays dead).

The schedule is data, not behaviour: the :class:`~repro.faults.injector.
FaultInjector` interprets events against the engine.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["FaultKind", "FaultEvent", "FaultSchedule", "PERMANENT",
           "replica_storm"]

PERMANENT = math.inf
"""Duration marking a fault that never heals within the run."""


class FaultKind(enum.Enum):
    DEVICE_LOSS = "device_loss"
    """A whole device (GPU) drops out of the deployment."""
    EXPERT_SHARD_LOSS = "expert_shard_loss"
    """One EP rank loses its expert shards (ECC/driver fault, OOM-kill)."""
    LINK_DEGRADE = "link_degrade"
    """The interconnect falls back to a slower path (NVLink -> PCIe)."""
    KV_PRESSURE = "kv_pressure"
    """A transient spike withholds a fraction of the KV block pool."""
    REPLICA_LOSS = "replica_loss"
    """A whole serving replica drops out of the fleet (node crash,
    spot-instance reclaim).  Fleet-scope: interpreted by
    :class:`repro.fleet.simulator.FleetSimulator`, never by the
    engine-level injector — the default mix excludes it, so existing
    engine-scope schedules are unchanged."""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``time`` and ``duration_s`` are simulated seconds.  ``target`` selects
    the device / EP rank the fault lands on (interpreted modulo the
    deployment's size by the injector; ignored for ``KV_PRESSURE``).
    ``magnitude`` is kind-specific: the bandwidth-slowdown factor for
    ``LINK_DEGRADE`` (>= 1) and the withheld pool fraction for
    ``KV_PRESSURE`` (in (0, 1]); unused otherwise.
    """

    time: float
    kind: FaultKind
    duration_s: float = PERMANENT
    target: int = 0
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("fault time must be non-negative")
        if self.duration_s <= 0:
            raise ValueError("fault duration must be positive")
        if self.target < 0:
            raise ValueError("fault target must be non-negative")
        if self.kind is FaultKind.LINK_DEGRADE and self.magnitude < 1.0:
            raise ValueError("LINK_DEGRADE magnitude is a slowdown (>= 1)")
        if self.kind is FaultKind.KV_PRESSURE and not (0 < self.magnitude <= 1):
            raise ValueError("KV_PRESSURE magnitude must be in (0, 1]")

    @property
    def heal_time(self) -> float:
        return self.time + self.duration_s

    @property
    def is_permanent(self) -> bool:
        return math.isinf(self.duration_s)

    def describe(self) -> str:
        heal = "permanent" if self.is_permanent else f"heals @{self.heal_time:.3f}s"
        return (f"t={self.time:.3f}s {self.kind.value} target={self.target} "
                f"magnitude={self.magnitude:g} ({heal})")


_DEFAULT_MIX: dict[FaultKind, float] = {
    FaultKind.DEVICE_LOSS: 0.15,
    FaultKind.EXPERT_SHARD_LOSS: 0.25,
    FaultKind.LINK_DEGRADE: 0.30,
    FaultKind.KV_PRESSURE: 0.30,
}
"""Default share of the total fault rate per kind (device loss rarest,
soft faults common — the usual production failure mix)."""


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-sorted list of :class:`FaultEvent`.

    Build explicitly from events (tests, replays) or via :meth:`generate`
    (seeded Poisson chaos).  ``events_between(t0, t1)`` is the injector's
    polling primitive: all events with ``t0 < time <= t1``.
    """

    events: tuple[FaultEvent, ...] = field(default=())
    seed: int | None = None
    """Seed the schedule was generated from (None for explicit events)."""

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: (e.time, e.kind.value,
                                                           e.target)))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def is_armed(self) -> bool:
        return bool(self.events)

    def events_between(self, t0: float, t1: float) -> list[FaultEvent]:
        """Events due in the half-open window ``(t0, t1]``."""
        return [e for e in self.events if t0 < e.time <= t1]

    def next_event_time(self, after: float) -> float | None:
        """First fault or heal strictly after ``after`` (idle engines
        advance their clock here so transient faults still heal)."""
        times = [e.time for e in self.events if e.time > after]
        times += [e.heal_time for e in self.events
                  if not e.is_permanent and e.heal_time > after]
        return min(times) if times else None

    def describe(self) -> str:
        if not self.events:
            return "no faults scheduled"
        head = f"{len(self.events)} fault(s)"
        if self.seed is not None:
            head += f" (seed {self.seed})"
        return "\n".join([head] + [f"  {e.describe()}" for e in self.events])

    @classmethod
    def generate(
        cls,
        seed: int,
        horizon_s: float,
        rate_per_s: float,
        num_targets: int = 1,
        mix: dict[FaultKind, float] | None = None,
        mean_duration_s: float = 0.5,
        permanent_fraction: float = 0.2,
        link_slowdown: float = 8.0,
        kv_pressure_fraction: float = 0.35,
    ) -> "FaultSchedule":
        """Poisson chaos: ``rate_per_s`` total events over ``horizon_s``.

        Pure function of its arguments — the PRNG is constructed from
        ``seed`` here and never touched again, so schedules are
        reproducible across processes and platforms.  ``link_slowdown``
        defaults to ~8x, the NVLink-4 (450 GB/s) to PCIe Gen5 x16
        (~56 GB/s effective) bandwidth ratio.
        """
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if rate_per_s < 0:
            raise ValueError("rate_per_s must be non-negative")
        if num_targets < 1:
            raise ValueError("num_targets must be >= 1")
        mix = dict(_DEFAULT_MIX if mix is None else mix)
        total = sum(mix.values())
        if total <= 0:
            raise ValueError("fault mix must have positive total weight")
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        for kind in sorted(mix, key=lambda k: k.value):  # stable order
            rate = rate_per_s * mix[kind] / total
            if rate <= 0:
                continue
            t = 0.0
            while True:
                t += float(rng.exponential(1.0 / rate))
                if t > horizon_s:
                    break
                permanent = bool(rng.random() < permanent_fraction)
                duration_s = PERMANENT if permanent else \
                    max(1e-3, float(rng.exponential(mean_duration_s)))
                magnitude = 1.0
                if kind is FaultKind.LINK_DEGRADE:
                    magnitude = max(1.0, link_slowdown * float(rng.uniform(0.5, 1.5)))
                elif kind is FaultKind.KV_PRESSURE:
                    magnitude = float(np.clip(
                        kv_pressure_fraction * rng.uniform(0.5, 1.5), 0.05, 0.9))
                events.append(FaultEvent(
                    time=t,
                    kind=kind,
                    duration_s=duration_s,
                    target=int(rng.integers(num_targets)),
                    magnitude=magnitude,
                ))
        return cls(events=tuple(events), seed=seed)


def replica_storm(
    seed: int,
    horizon_s: float,
    rate_per_s: float,
    num_replicas: int = 1,
    mean_outage_s: float = 1.0,
    permanent_fraction: float = 0.25,
) -> FaultSchedule:
    """Seeded whole-replica chaos for fleet simulations.

    A :meth:`FaultSchedule.generate` schedule whose mix is 100%
    :attr:`FaultKind.REPLICA_LOSS` — each event kills one live replica
    (``target`` interpreted modulo the live pool) and, unless permanent,
    heals by bringing up a replacement ``duration_s`` later.  Same purity
    contract as every schedule: bit-identical for a fixed argument tuple.
    """
    return FaultSchedule.generate(
        seed,
        horizon_s,
        rate_per_s,
        num_targets=num_replicas,
        mix={FaultKind.REPLICA_LOSS: 1.0},
        mean_duration_s=mean_outage_s,
        permanent_fraction=permanent_fraction,
    )
