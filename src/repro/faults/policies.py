"""Recovery policies: what the engine does with fault-killed work.

A :class:`RecoveryPolicy` decides, per killed request, whether to retry
(with a simulated-time backoff) or fail terminally with a reason.  A
:class:`DegradePolicy` additionally governs graceful degradation when
expert shards are lost without surviving replicas: instead of failing
every request that would route to a dead expert, the router's effective
top-k is reduced — trading accuracy (priced by the evals layer) for
availability.

All delays are **simulated** seconds computed from deterministic inputs
(attempt count), never wall clock, so chaos runs replay bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.request import Request

__all__ = [
    "RecoveryDecision",
    "RecoveryPolicy",
    "RetryPolicy",
    "FailFastPolicy",
    "DegradePolicy",
]


@dataclass(frozen=True)
class RecoveryDecision:
    """Verdict for one killed request."""

    action: str  # "retry" | "fail"
    retry_at: float = 0.0
    reason: str = ""

    def __post_init__(self) -> None:
        if self.action not in ("retry", "fail"):
            raise ValueError(f"action must be 'retry' or 'fail', got {self.action!r}")
        if self.action == "fail" and not self.reason:
            raise ValueError("a fail decision needs a reason")


class RecoveryPolicy:
    """Base policy: subclasses override :meth:`on_request_killed`."""

    def on_request_killed(self, request: "Request", now: float,
                          reason: str) -> RecoveryDecision:
        raise NotImplementedError


@dataclass(frozen=True)
class RetryPolicy(RecoveryPolicy):
    """Retry with capped exponential backoff, in simulated time.

    Attempt ``n`` (0-based) is resubmitted after
    ``min(base_delay_s * multiplier**n, max_delay_s)``; after
    ``max_retries`` kills the request fails with the originating fault as
    the reason.  No jitter — determinism is the point here; real jitter
    belongs to the fault schedule's seed, not the policy.
    """

    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    max_retries: int = 3

    def __post_init__(self) -> None:
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")

    def backoff_s(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (0-based), capped."""
        return min(self.base_delay_s * self.multiplier ** attempt,
                   self.max_delay_s)

    def on_request_killed(self, request: "Request", now: float,
                          reason: str) -> RecoveryDecision:
        attempt = request.fault_retries
        if attempt >= self.max_retries:
            return RecoveryDecision(
                action="fail",
                reason=f"retry budget exhausted after {attempt} attempts "
                       f"({reason})",
            )
        return RecoveryDecision(action="retry",
                                retry_at=now + self.backoff_s(attempt))


@dataclass(frozen=True)
class FailFastPolicy(RecoveryPolicy):
    """No retries: every fault-killed request fails immediately.  The
    availability floor any retry policy must beat."""

    def on_request_killed(self, request: "Request", now: float,
                          reason: str) -> RecoveryDecision:
        return RecoveryDecision(action="fail", reason=reason)


@dataclass(frozen=True)
class DegradePolicy:
    """Graceful degradation of the router when experts become unreachable.

    When an EP rank's shards are lost and an expert has no surviving
    replica, the deployment can keep serving by routing each token to
    fewer experts: effective top-k drops by ``step`` per degradation
    (never below ``min_top_k``).  The throughput side of the trade is
    priced by the injector through the perf-model component breakdown
    (expert FFN + dispatch scale with top-k); the accuracy side by
    :func:`repro.evals.accuracy.predicted_accuracy` on the degraded
    configuration.
    """

    min_top_k: int = 1
    step: int = 1

    def __post_init__(self) -> None:
        if self.min_top_k < 1:
            raise ValueError("min_top_k must be >= 1")
        if self.step < 1:
            raise ValueError("step must be >= 1")

    def degraded_top_k(self, current_top_k: int) -> int:
        """Top-k after one more degradation step."""
        return max(self.min_top_k, current_top_k - self.step)
