#!/usr/bin/env python
"""Scaling a MoE beyond one GPU (and beyond one node, and beyond HBM).

Walks the three walls an over-sized mixture hits, using the extension
substrates:

1. **the node wall** — EP dispatch cost once experts spill across the
   InfiniBand boundary (`repro.hardware.ClusterSpec`);
2. **the memory wall** — offloading cold experts to host RAM and what
   frequency-aware caching recovers (`repro.perfmodel.offload`);
3. **the imbalance wall** — placing experts by measured activation
   frequency to flatten EP load (`repro.parallel.placement_opt`).

Run:  python examples/scaling_beyond_one_gpu.py
"""

from __future__ import annotations

import numpy as np

from repro.hardware import H100_SXM, ClusterSpec
from repro.models import get_model
from repro.parallel import compare_placements
from repro.perfmodel import (
    OffloadPlan,
    offload_throughput_estimate,
    traffic_hit_fraction,
)
from repro.workloads import run_activation_study


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. the node wall
    # ------------------------------------------------------------------ #
    cluster = ClusterSpec(node=H100_SXM, num_nodes=4)
    print("EP dispatch cost for 4096 routed tokens (hidden 4096, top-2):")
    for ep in (2, 4, 8, 16, 32):
        nodes = -(-ep // H100_SXM.max_devices)
        t = cluster.ep_dispatch_time(4096, 4096, 2, ep)
        print(f"  EP={ep:<3d} ({nodes} node{'s' if nodes > 1 else ' '}): "
              f"{t * 1e3:7.2f} ms")
    print("  -> fill a node with experts before spilling across the fabric.\n")

    # ------------------------------------------------------------------ #
    # 2. the memory wall
    # ------------------------------------------------------------------ #
    model = get_model("MolmoE-1B")
    tracker = run_activation_study(model, rng=np.random.default_rng(9),
                                   max_routed_tokens=20_000)
    counts = tracker.heatmap().sum(axis=0)
    print(f"{model.name}: decode tok/s (batch 16) with experts offloaded to host RAM:")
    for hot in (1.0, 0.75, 0.5):
        for policy in ("random", "frequency"):
            hit = hot if policy == "random" else traffic_hit_fraction(counts, hot)
            plan = OffloadPlan(hot_fraction=hot, hit_fraction=hit)
            thr = offload_throughput_estimate(model, 16, 1024, plan, H100_SXM)
            print(f"  {100 * hot:3.0f}% resident, {policy:9s} cache "
                  f"(hit {100 * hit:3.0f}%): {thr:8,.0f} tok/s")
    print("  -> PCIe misses are catastrophic; keep the hot set resident.\n")

    # ------------------------------------------------------------------ #
    # 3. the imbalance wall
    # ------------------------------------------------------------------ #
    print("EP load imbalance (max/mean) with default vs frequency-aware placement:")
    for name in ("DeepSeek-VL2-Tiny", "MolmoE-1B"):
        t = run_activation_study(get_model(name), rng=np.random.default_rng(5),
                                 max_routed_tokens=20_000)
        loads = t.heatmap().sum(axis=0).astype(float)
        cmp = compare_placements(loads, 8)
        print(f"  {name:20s} default {cmp['default_imbalance']:.2f}  ->  "
              f"LPT {cmp['optimized_imbalance']:.2f}")
    print("  -> balanced-trained mixtures don't need it; skewed ones do.")


if __name__ == "__main__":
    main()
