#!/usr/bin/env python
"""Online serving simulation: Poisson traffic through the vLLM-like engine.

Feeds a bursty request stream (log-normal lengths, Poisson arrivals)
through the continuous-batching engine and reports the serving-level
metrics a production deployment cares about — TTFT distribution, sustained
throughput, KV-cache pressure, preemptions — and shows what chunked
prefill does to tail TTFT.

Run:  python examples/serving_simulation.py
"""

from __future__ import annotations

import numpy as np

from repro.hardware import H100_SXM
from repro.models import get_model
from repro.perfmodel import InferencePerfModel
from repro.serving import ServingEngine, SchedulerConfig
from repro.serving.events import EventType
from repro.workloads import LengthDistribution, poisson_arrivals

NUM_REQUESTS = 200
ARRIVAL_RATE = 40.0  # requests/s


def run_once(chunked: bool, seed: int = 0) -> None:
    rng = np.random.default_rng(seed)
    pm = InferencePerfModel(get_model("OLMoE-1B-7B"), H100_SXM)
    config = SchedulerConfig(
        max_num_seqs=128,
        max_num_batched_tokens=8192,
        enable_chunked_prefill=chunked,
        chunk_size=512,
    )
    engine = ServingEngine(pm, scheduler_config=config)

    arrivals = poisson_arrivals(ARRIVAL_RATE, NUM_REQUESTS, rng)
    dist = LengthDistribution(mean_input=512, mean_output=192, sigma=0.5)
    for req in dist.requests(NUM_REQUESTS, rng, arrival_times=arrivals):
        engine.submit(req)

    result = engine.run()
    ttfts = np.array([r.ttft for r in result.requests])
    decodes = result.log.of_type(EventType.DECODE)
    mean_batch = np.mean([len(e.request_ids) for e in decodes])

    label = "chunked prefill" if chunked else "whole-prompt prefill"
    print(f"--- {label} ---")
    print(f"  makespan            : {result.makespan:8.1f} s")
    print(f"  total throughput    : {result.throughput_tok_s:8,.0f} tok/s")
    print(f"  generation rate     : {result.generation_throughput_tok_s:8,.0f} tok/s")
    print(f"  TTFT mean / p50 / p99: {ttfts.mean():6.3f} / "
          f"{np.percentile(ttfts, 50):6.3f} / {np.percentile(ttfts, 99):6.3f} s")
    print(f"  mean decode batch   : {mean_batch:8.1f} seqs")
    print(f"  peak KV utilization : {100 * result.log.peak_kv_utilization():7.1f} %")
    print(f"  preemptions         : {result.num_preemptions:8d}")
    print()


def main() -> None:
    print(f"Serving OLMoE-1B-7B on one H100: {NUM_REQUESTS} requests at "
          f"{ARRIVAL_RATE:.0f} req/s (log-normal lengths)\n")
    run_once(chunked=False)
    run_once(chunked=True)
    print("With a generous token budget, whole-prompt prefill keeps TTFT "
          "lowest;\nchunked prefill spreads prompt work across iterations "
          "(more, smaller\niterations), which matters when single prompts "
          "are long enough to\nstall decode — try mean_input=4000 to see "
          "the tail flip.")


if __name__ == "__main__":
    main()
