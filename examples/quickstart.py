#!/usr/bin/env python
"""Quickstart: the three layers of MoE-Inference-Bench in five minutes.

1. the model zoo + parameter accounting,
2. the analytical performance model (throughput/latency on simulated H100s),
3. the functional NumPy engine (a real forward pass through a reduced-width
   MoE transformer).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.hardware import H100_SXM
from repro.models import get_model, model_params
from repro.moe import MoETransformer
from repro.optim import FP8_CONFIG, FP16_CONFIG
from repro.parallel import ParallelPlan
from repro.perfmodel import InferencePerfModel


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. model zoo and parameter accounting (paper Table 1 / Fig. 1)
    # ------------------------------------------------------------------ #
    model = get_model("Mixtral-8x7B")
    params = model_params(model)
    print(f"{model.name}: {model.num_layers} layers, "
          f"{model.moe.num_experts} experts (top-{model.moe.top_k})")
    print(f"  total params : {params.total / 1e9:6.1f} B")
    print(f"  active/token : {params.active / 1e9:6.1f} B")
    print(f"  MoE share    : {100 * params.moe_fraction_total:5.1f}% of memory")

    # ------------------------------------------------------------------ #
    # 2. performance on a simulated 4xH100 node (paper §4-§7)
    # ------------------------------------------------------------------ #
    print("\nThroughput on 4xH100 (batch 32, 1024 in / 1024 out):")
    for quant in (FP16_CONFIG, FP8_CONFIG):
        pm = InferencePerfModel(model, H100_SXM, plan=ParallelPlan(tp=4),
                                quant=quant)
        m = pm.generate(32, 1024, 1024)
        print(f"  {quant.name:5s}: {m.throughput_tok_s:8,.0f} tok/s   "
              f"TTFT {m.ttft_s * 1e3:7.1f} ms   ITL {m.itl_s * 1e6:6.1f} us")

    print("\nActive-expert sweep (the paper's primary optimization lever):")
    for k in (1, 2, 4, 8):
        variant = model.with_moe(model.moe.with_top_k(k))
        pm = InferencePerfModel(variant, H100_SXM, plan=ParallelPlan(tp=4))
        m = pm.generate(16, 1024, 1024)
        print(f"  top-k={k}: {m.throughput_tok_s:8,.0f} tok/s")

    # where does a decode step's time actually go?
    pm = InferencePerfModel(model, H100_SXM, plan=ParallelPlan(tp=4))
    bd = pm.steps.step_breakdown(32, 32, 1536, "decode")
    print("\n" + bd.describe())

    # ------------------------------------------------------------------ #
    # 3. a real forward pass through the functional engine
    # ------------------------------------------------------------------ #
    tiny = get_model("OLMoE-1B-7B").scaled(1 / 32)
    engine = MoETransformer(tiny, seed=0, max_positions=64,
                            track_activations=True)
    prompt = np.random.default_rng(0).integers(0, tiny.vocab_size, size=(2, 8))
    generated = engine.generate_greedy(prompt, max_new_tokens=8)
    print(f"\nFunctional engine ({tiny.hidden_size}-wide OLMoE skeleton):")
    print(f"  generated ids : {generated[0].tolist()}")
    heat = engine.tracker.heatmap()
    print(f"  expert activations recorded: {heat.sum():,} across "
          f"{heat.shape[0]} layers x {heat.shape[1]} experts")


if __name__ == "__main__":
    main()
