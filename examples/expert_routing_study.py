#!/usr/bin/env python
"""Expert routing study: balance, frequency-based pruning, and fidelity.

Reproduces the paper's §8.3 workflow end-to-end on the functional engine:

1. route an MME-like multimodal stream through balanced (DeepSeek-style)
   and unbalanced (MolmoE-style) routers and compare activation heatmaps;
2. use the activation statistics to prune the least-used experts
   (inter-expert pruning, §6.2) on a live reduced-width model;
3. measure how pruning and quantization perturb model predictions with
   the agreement harness.

Run:  python examples/expert_routing_study.py
"""

from __future__ import annotations

import numpy as np

from repro.evals import make_task_suite
from repro.models import get_model
from repro.moe import MoETransformer, inter_expert_prune_layer
from repro.workloads import MMEStream, run_activation_study


def ascii_heat(counts: np.ndarray, width: int = 64) -> str:
    """One text row per layer; darker glyph == hotter expert."""
    glyphs = " .:-=+*#%@"
    out = []
    step = max(1, counts.shape[1] // width)
    sub = counts[:, ::step]
    hi = sub.max() or 1
    for row in sub:
        out.append("".join(glyphs[min(9, int(9 * c / hi))] for c in row))
    return "\n".join(out)


def main() -> None:
    rng = np.random.default_rng(7)

    # ------------------------------------------------------------------ #
    # 1. activation frequency: balanced vs unbalanced training (Fig. 15)
    # ------------------------------------------------------------------ #
    print("Routing the MME-like stream (2,374 samples) through the routers:\n")
    trackers = {}
    for name in ("DeepSeek-VL2-Tiny", "MolmoE-1B"):
        tracker = run_activation_study(get_model(name), stream=MMEStream(),
                                       rng=rng, max_routed_tokens=40_000)
        trackers[name] = tracker
        m = tracker.overall_metrics()
        print(f"{name}: peak {tracker.peak_activation():>9,}  "
              f"gini {m.gini:.3f}  max/mean {m.imbalance:.2f}")
        print(ascii_heat(tracker.heatmap()[:6]))
        print()

    # ------------------------------------------------------------------ #
    # 2. frequency-based inter-expert pruning on a live model
    # ------------------------------------------------------------------ #
    cfg = get_model("OLMoE-1B-7B").scaled(1 / 32)
    model = MoETransformer(cfg, seed=0, max_positions=64,
                           expert_bias_std=0.6, track_activations=True)
    probe = rng.integers(0, cfg.vocab_size, size=(32, 16))
    model(probe)  # gather activation statistics

    layer0 = model.layers[0].ffn
    counts = model.tracker.heatmap()[0]
    pruned = inter_expert_prune_layer(layer0, ratio=0.5,
                                      activation_counts=counts)
    x = rng.normal(0, 1, (64, cfg.hidden_size)).astype(np.float32)
    base_out = layer0(x).hidden
    pruned_out = pruned(x).hidden
    drift = float(np.linalg.norm(base_out - pruned_out)
                  / np.linalg.norm(base_out))
    print(f"Inter-expert pruning layer 0 by activation frequency: "
          f"{layer0.cfg.num_experts} -> {pruned.cfg.num_experts} experts")
    print(f"  relative output drift: {100 * drift:.1f}% "
          "(frequency-guided pruning keeps the hot experts)\n")

    # ------------------------------------------------------------------ #
    # 3. fidelity of optimized variants (agreement harness)
    # ------------------------------------------------------------------ #
    reference = MoETransformer(cfg, seed=0, max_positions=64)
    variants = {
        "fp8 weights": MoETransformer(cfg, seed=0, max_positions=64,
                                      weight_dtype="fp8_e4m3"),
        "int4 weights": MoETransformer(cfg, seed=0, max_positions=64,
                                       weight_dtype="int4"),
    }
    tasks = make_task_suite(num_tasks=3, batch=16, seq_len=12)
    print("Prediction agreement vs the FP32 reference:")
    for name, candidate in variants.items():
        results = [t.evaluate(reference, candidate) for t in tasks]
        top1 = np.mean([r.top1_agreement for r in results])
        rmse = np.mean([r.mean_logit_rmse for r in results])
        print(f"  {name:13s}: top-1 {100 * top1:5.1f}%   logit RMSE {rmse:.4f}")


if __name__ == "__main__":
    main()
