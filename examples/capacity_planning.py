#!/usr/bin/env python
"""Capacity planning: pick a deployment for a traffic target.

The workload the paper's intro motivates: you have a MoE model, an H100
node, and a latency/throughput target — which parallelism plan and
precision should you deploy?  This example sweeps every valid TP/PP/EP
plan at FP16 and FP8 across 1-8 GPUs, filters plans that fit in memory
and meet the TTFT budget, and prints the efficient frontier.

Run:  python examples/capacity_planning.py [model-name]
"""

from __future__ import annotations

import sys

from repro.hardware import H100_SXM
from repro.models import get_model
from repro.optim import FP8_CONFIG, FP16_CONFIG
from repro.parallel import enumerate_plans
from repro.perfmodel import InferencePerfModel

BATCH = 32
INPUT_TOKENS = 1024
OUTPUT_TOKENS = 512
TTFT_BUDGET_S = 2.0


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "Mixtral-8x7B"
    model = get_model(name)
    print(f"Capacity planning for {model.name} on H100 nodes")
    print(f"workload: batch {BATCH}, {INPUT_TOKENS} in / {OUTPUT_TOKENS} out, "
          f"TTFT budget {TTFT_BUDGET_S:.1f}s\n")

    header = (f"{'gpus':>4} {'plan':<14} {'quant':<6} {'fits':<5} "
              f"{'weights/GPU':>12} {'TTFT':>9} {'tok/s':>10} {'tok/s/GPU':>10}")
    print(header)
    print("-" * len(header))

    candidates = []
    for num_gpus in (1, 2, 4, 8):
        for plan in enumerate_plans(model, num_gpus):
            for quant in (FP16_CONFIG, FP8_CONFIG):
                pm = InferencePerfModel(model, H100_SXM, plan=plan, quant=quant)
                fits = pm.fits(BATCH, INPUT_TOKENS + OUTPUT_TOKENS)
                metrics = pm.generate(BATCH, INPUT_TOKENS, OUTPUT_TOKENS,
                                      check_memory=False)
                row = dict(
                    gpus=num_gpus, plan=plan.label, quant=quant.name,
                    fits=fits,
                    weights_gb=pm.memory.weight_bytes_per_device() / 1e9,
                    ttft=metrics.ttft_s,
                    tok_s=metrics.throughput_tok_s,
                    tok_s_gpu=metrics.throughput_tok_s / num_gpus,
                )
                candidates.append(row)
                print(f"{row['gpus']:>4} {row['plan']:<14} {row['quant']:<6} "
                      f"{'yes' if fits else 'OOM':<5} "
                      f"{row['weights_gb']:>10.1f}GB {row['ttft']:>8.3f}s "
                      f"{row['tok_s']:>10,.0f} {row['tok_s_gpu']:>10,.0f}")

    feasible = [c for c in candidates
                if c["fits"] and c["ttft"] <= TTFT_BUDGET_S]
    if not feasible:
        print("\nNo deployment meets the constraints — add GPUs or quantize.")
        return

    best_thr = max(feasible, key=lambda c: c["tok_s"])
    best_eff = max(feasible, key=lambda c: c["tok_s_gpu"])
    print(f"\nhighest throughput : {best_thr['gpus']}x {best_thr['plan']} "
          f"@{best_thr['quant']} -> {best_thr['tok_s']:,.0f} tok/s")
    print(f"most cost-efficient: {best_eff['gpus']}x {best_eff['plan']} "
          f"@{best_eff['quant']} -> {best_eff['tok_s_gpu']:,.0f} tok/s/GPU")

    # the same search, packaged: the deployment advisor
    from repro.core.advisor import DeploymentTarget, advise

    rec = advise(model, H100_SXM, DeploymentTarget(
        batch_size=BATCH, input_tokens=INPUT_TOKENS,
        output_tokens=OUTPUT_TOKENS, ttft_slo_s=TTFT_BUDGET_S,
    ))
    print("\nadvisor says:")
    for line in rec.describe().splitlines():
        print(f"  {line}")


if __name__ == "__main__":
    main()
