"""Bench: regenerate Figure 10 (FP16 vs FP8 on Mixtral-8x7B)."""


def test_fig10(run_exp):
    result = run_exp("fig10")
    batch = result.table("batch sweep")
    lengths = result.table("length sweep")
    # FP8 wins everywhere
    assert all(r["fp8_gain_pct"] > 0 for r in batch)
    assert all(r["fp8_gain_pct"] > 0 for r in lengths)
    # paper: up to 25-30% at the largest batch, widening with batch
    gains = {r["batch"]: r["fp8_gain_pct"] for r in batch}
    assert gains[64] > gains[1]
    assert 15 < gains[64] < 40
    # paper: a stable 20-25% advantage across lengths
    lg = [r["fp8_gain_pct"] for r in lengths]
    assert max(lg) - min(lg) < 15
