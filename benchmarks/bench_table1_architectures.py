"""Bench: regenerate Table 1 (architecture comparison)."""


def test_table1(run_exp):
    result = run_exp("table1")
    table = result.table("architectures")
    assert len(table) == 9  # 6 LLMs + 3 DeepSeek-VL2 variants
    mixtral = table.where(model="Mixtral-8x7B").rows[0]
    assert round(mixtral["total_params_B"]) == 47
    assert round(mixtral["active_params_B"], 1) == 12.9
