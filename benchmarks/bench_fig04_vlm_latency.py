"""Bench: regenerate Figure 4 (VLM TTFT/ITL/E2E)."""


def test_fig04(run_exp):
    result = run_exp("fig4")
    table = result.table("vlm latency")
    rows = {r["model"]: r for r in table}
    # paper: Tiny fastest TTFT; base slowest E2E among the family
    assert rows["DeepSeek-VL2-Tiny"]["ttft_s"] < rows["DeepSeek-VL2"]["ttft_s"]
    assert rows["DeepSeek-VL2-Tiny"]["e2e_s"] < rows["DeepSeek-VL2"]["e2e_s"]
    assert rows["DeepSeek-VL2-Tiny"]["samples_per_s"] > rows["DeepSeek-VL2"]["samples_per_s"]
