"""Bench: regenerate Figure 7 (throughput vs FFN dimension)."""


def test_fig07(run_exp):
    result = run_exp("fig7")
    table = result.table("hyperparameter grid")
    assert len(table) == 4 * 4 * 4
    # throughput declines steeply with FFN dim (paper: ~50% average)
    sub = {r["ffn_dim"]: r["throughput_tok_s"]
           for r in table if r["num_experts"] == 8 and r["top_k"] == 2}
    assert sub[14336] < 0.7 * sub[1792]
    # steepest drop in the first doubling, flattening later (asymptote)
    d1 = sub[1792] / sub[3584]
    d3 = sub[7168] / sub[14336]
    assert d1 > d3 * 0.8
