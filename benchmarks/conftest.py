"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one of the paper's tables/figures via the
experiment registry under pytest-benchmark timing, then asserts the shape
properties the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only

Every ``run_exp`` invocation is additionally gated by the fingerprint
baselines committed at the repo root (``BENCH_<figure>.json``, see
``docs/regression.md``): if the regenerated result's sim-derived metrics
drift from the recorded baseline, the benchmark fails with a drift report.
Set ``REPRO_BENCH_RECORD=1`` to re-record baselines instead of gating
(equivalent to ``repro bench --record``).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.core.experiment import ExperimentResult
from repro.core.registry import get_experiment

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _gate_fingerprint(result: ExperimentResult) -> None:
    from repro.obs.fingerprint import fingerprint_result
    from repro.obs.regress import (
        BaselineStore,
        compare_fingerprints,
        render_drift_report,
    )

    store = BaselineStore(REPO_ROOT)
    fingerprint = fingerprint_result(result)
    if os.environ.get("REPRO_BENCH_RECORD"):
        store.record(fingerprint, note="benchmark harness")
        return
    baseline = store.latest_fingerprint(result.exp_id)
    if baseline is None:
        return  # figure has no committed baseline yet
    drifts = compare_fingerprints(baseline, fingerprint)
    if drifts:
        pytest.fail(
            f"fingerprint drift vs {store.path(result.exp_id).name}:\n"
            + render_drift_report(drifts)
        )


@pytest.fixture
def run_exp(benchmark):
    """Run one registered experiment under the benchmark timer (a single
    round — experiments are deterministic; their cost is the figure of
    merit, not their variance), then gate it against the committed
    fingerprint baseline."""

    def _run(exp_id: str) -> ExperimentResult:
        result = benchmark.pedantic(get_experiment(exp_id), rounds=1,
                                    iterations=1)
        _gate_fingerprint(result)
        return result

    return _run
