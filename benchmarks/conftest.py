"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one of the paper's tables/figures via the
experiment registry under pytest-benchmark timing, then asserts the shape
properties the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.core.experiment import ExperimentResult
from repro.core.registry import get_experiment


@pytest.fixture
def run_exp(benchmark):
    """Run one registered experiment under the benchmark timer (a single
    round — experiments are deterministic; their cost is the figure of
    merit, not their variance)."""

    def _run(exp_id: str) -> ExperimentResult:
        return benchmark.pedantic(get_experiment(exp_id), rounds=1, iterations=1)

    return _run
