"""Bench: regenerate Figure 1 (layer-wise parameter breakdown)."""


def test_fig01(run_exp):
    result = run_exp("fig1")
    frac = result.table("moe dominance")
    assert len(frac) == 3
    # the paper's point: MoE dominates both totals and actives
    for row in frac:
        assert row["moe_fraction_total"] > 0.85
        assert row["moe_fraction_active"] > 0.5
