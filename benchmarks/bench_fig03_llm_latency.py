"""Bench: regenerate Figure 3 (LLM TTFT/ITL/E2E at bs 64, io 2048)."""


def test_fig03(run_exp):
    result = run_exp("fig3")
    table = result.table("llm latency")
    ttft = {r["model"]: r["ttft_s"] for r in table}
    # paper: OLMoE fastest TTFT, well ahead of DeepSeek-V2-Lite
    assert min(ttft, key=ttft.get) == "OLMoE-1B-7B"
    assert ttft["DeepSeek-V2-Lite"] / ttft["OLMoE-1B-7B"] > 1.4
    e2e = [r["e2e_s"] for r in table]
    assert max(e2e) / min(e2e) > 1.5  # paper: >120% spread
