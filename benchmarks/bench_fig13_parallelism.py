"""Bench: regenerate Figure 13 (TP/PP/EP scaling)."""


def test_fig13(run_exp):
    result = run_exp("fig13")
    table = result.table("parallelism scaling")
    for model in ("Mixtral-8x7B", "OLMoE-1B-7B"):
        scal = {s: table.where(model=model, strategy=s, gpus=4).rows[0]["scaling_vs_1gpu"]
                for s in ("TP", "TP+EP", "PP", "PP+EP")}
        # paper: TP >2x from 1 to 4 GPUs; TP+EP lower; PP (±EP) ~flat
        assert scal["TP"] > 2.0
        assert scal["TP+EP"] < scal["TP"]
        assert scal["PP"] < 1.1
        assert abs(scal["PP+EP"] - scal["PP"]) < 0.1
