"""Bench: regenerate Figure 14 (fused vs non-fused MoE)."""


def test_fig14(run_exp):
    result = run_exp("fig14")
    batch = result.table("batch sweep")
    lengths = result.table("length sweep")
    # fused wins at every point; paper band roughly 12-20%
    assert all(5 < r["gain_pct"] < 35 for r in batch)
    assert all(5 < r["gain_pct"] < 35 for r in lengths)
    # launch accounting: O(1) fused vs O(E) naive
    assert any("3 fused" in o for o in result.observations)
