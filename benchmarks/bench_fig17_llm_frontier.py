"""Bench: regenerate Figure 17 (LLM throughput/latency vs accuracy)."""


def test_fig17(run_exp):
    result = run_exp("fig17")
    table = result.table("frontier")
    rows = {r["model"]: r for r in table}
    thr = {m: r["throughput_tok_s"] for m, r in rows.items()}
    acc = {m: r["accuracy_pct"] for m, r in rows.items()}
    # paper's frontier: OLMoE fastest (>40% margin), Phi slowest,
    # Qwen3-30B/Mixtral most accurate, OLMoE least accurate
    ranked = sorted(thr, key=thr.get, reverse=True)
    assert ranked[0] == "OLMoE-1B-7B"
    assert thr[ranked[0]] / thr[ranked[1]] > 1.4
    assert ranked[-1] == "Phi-3.5-MoE"
    assert max(acc, key=acc.get) in ("Qwen3-30B-A3B", "Mixtral-8x7B")
    assert min(acc, key=acc.get) == "OLMoE-1B-7B"
