"""Micro-benchmarks of the substrates themselves.

Unlike the ``bench_fig*`` files (which time whole experiment
regenerations), these exercise the hot paths of the library under real
multi-round pytest-benchmark timing: the NumPy MoE layer (fused vs
unfused), the router, the serving engine's iteration loop, and the
analytical model evaluation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.gpus import H100_SXM
from repro.models.config import MoEConfig
from repro.models.zoo import OLMOE_1B_7B, get_model
from repro.moe.layer import MoELayer
from repro.moe.model import MoETransformer
from repro.moe.router import TopKRouter
from repro.perfmodel.inference import InferencePerfModel
from repro.serving.engine import ServingEngine
from repro.serving.request import Request, SamplingParams

_RNG = np.random.default_rng(0)
_HIDDEN = 256
_LAYER = MoELayer(_HIDDEN, MoEConfig(num_experts=16, top_k=2, expert_ffn_dim=512),
                  rng=np.random.default_rng(1))
_TOKENS = _RNG.normal(0, 1, (256, _HIDDEN)).astype(np.float32)
_ROUTER = TopKRouter(_HIDDEN, 64, 8, rng=np.random.default_rng(2))


def test_router_route(benchmark):
    result = benchmark(_ROUTER.route, _TOKENS)
    assert result.num_tokens == 256


def test_moe_layer_fused(benchmark):
    out = benchmark(_LAYER, _TOKENS, "fused")
    assert out.hidden.shape == _TOKENS.shape


def test_moe_layer_unfused(benchmark):
    out = benchmark(_LAYER, _TOKENS, "unfused")
    assert out.hidden.shape == _TOKENS.shape


def test_transformer_decode_step(benchmark):
    cfg = get_model("OLMoE-1B-7B").scaled(1 / 32)
    model = MoETransformer(cfg, seed=0, max_positions=128)
    caches = model.new_caches(4, 128)
    prompt = _RNG.integers(0, cfg.vocab_size, size=(4, 16))
    model.forward(prompt, caches)
    step = _RNG.integers(0, cfg.vocab_size, size=(4, 1))

    def decode():
        # rewind the cache so each round does identical work
        length = caches[0].length
        logits = model.forward(step, caches)
        for c in caches:
            c.length = length
        return logits

    logits = benchmark(decode)
    assert logits.shape == (4, 1, cfg.vocab_size)


def test_perfmodel_generate(benchmark):
    pm = InferencePerfModel(OLMOE_1B_7B, H100_SXM)
    metrics = benchmark(pm.generate, 16, 512, 256)
    assert metrics.throughput_tok_s > 0


def test_serving_engine_run(benchmark):
    pm = InferencePerfModel(OLMOE_1B_7B, H100_SXM)

    def serve():
        engine = ServingEngine(pm, kv_pool_tokens=65536)
        for i in range(16):
            engine.submit(Request(request_id=i, prompt_tokens=128,
                                  sampling=SamplingParams(max_tokens=32)))
        return engine.run()

    result = benchmark(serve)
    assert all(r.is_finished for r in result.requests)
