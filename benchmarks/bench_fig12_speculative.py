"""Bench: regenerate Figure 12 (speculative decoding draft comparison)."""


def test_fig12(run_exp):
    result = run_exp("fig12")
    len_table = result.table("input length sweep (k=4)")
    k_table = result.table("draft token sweep (input 512)")

    # paper: Qwen3-1.7B wins at every input length
    for L in (128, 256, 512, 1024, 2048):
        thr = {r["draft"]: r["decode_tok_s"] for r in len_table.where(input_len=L)}
        assert max(thr, key=thr.get) == "Qwen3-1.7B"

    # paper: throughput declines with input length for every draft
    for d in ("Qwen3-0.6B", "Qwen3-1.7B", "Qwen3-4B", "Qwen3-8B"):
        thr = [r["decode_tok_s"] for r in len_table.where(draft=d)]
        assert all(a >= b for a, b in zip(thr, thr[1:]))
        # and monotonically with draft-token count
        ks = [r["decode_tok_s"] for r in k_table.where(draft=d)]
        assert all(a > b for a, b in zip(ks, ks[1:]))

    # paper: 1.7B leads 8B by a clear margin at short inputs
    short = {r["draft"]: r["decode_tok_s"] for r in len_table.where(input_len=128)}
    assert short["Qwen3-1.7B"] / short["Qwen3-8B"] > 1.1
