"""Bench: regenerate Figure 5 (batch size x active experts)."""


def test_fig05(run_exp):
    result = run_exp("fig5")
    table = result.table("throughput")
    assert len(table) == 2 * 5 * 6  # models x batches x top-k values
    for model in ("DeepSeek-V2-Lite", "Qwen1.5-MoE-A2.7B"):
        # throughput falls monotonically with top-k at every batch size
        for batch in (1, 16, 32, 64, 128):
            thr = [r["throughput_tok_s"] for r in table.where(model=model, batch=batch)]
            assert all(a >= b * 0.999 for a, b in zip(thr, thr[1:]))
        # batch scaling is strong but sub-linear (paper: "roughly two
        # orders of magnitude" from 1 to 128, i.e. well above 8x)
        lo = table.where(model=model, batch=1, top_k=4).rows[0]["throughput_tok_s"]
        hi = table.where(model=model, batch=128, top_k=4).rows[0]["throughput_tok_s"]
        assert 8 < hi / lo < 128
