"""Bench: regenerate Figure 11 (intra/inter expert pruning)."""


def test_fig11(run_exp):
    result = run_exp("fig11")
    table = result.table("pruning sweep")
    # both models, both kinds, three ratios, top-k up to the baseline
    assert len(table) == 2 * 3 * (8 + 4)
    for model, base_k in (("OLMoE-1B-7B", 8), ("Qwen1.5-MoE-A2.7B", 4)):
        # throughput decreases with top-k under every pruning setting
        for kind in ("inter", "intra"):
            for ratio in (12.5, 25.0, 50.0):
                thr = [r["throughput_tok_s"] for r in
                       table.where(model=model, kind=kind, ratio_pct=ratio)]
                assert all(a >= b * 0.995 for a, b in zip(thr, thr[1:]))
        # paper: 50% pruning significantly improves throughput at the
        # pretrained top-k; intra cuts per-token compute hardest
        intra50 = table.where(model=model, kind="intra", ratio_pct=50.0,
                              top_k=base_k).rows[0]
        assert intra50["gain_vs_unpruned_pct"] > 5
        # low ratios have much smaller effects
        intra125 = table.where(model=model, kind="intra", ratio_pct=12.5,
                               top_k=base_k).rows[0]
        assert intra125["gain_vs_unpruned_pct"] < intra50["gain_vs_unpruned_pct"]
