"""Bench: regenerate Figure 16 (H100 vs Cerebras CS-3, Llama-4-Scout)."""


def test_fig16(run_exp):
    result = run_exp("fig16")
    table = result.table("latency/throughput vs length")
    h100 = {r["io_tokens"]: r for r in table.where(hardware="H100")}
    cs3 = {r["io_tokens"]: r for r in table.where(hardware="CS-3")}
    # CS-3 delivers lower latency at every length
    for n in h100:
        assert cs3[n]["e2e_s"] < h100[n]["e2e_s"]
    # H100's per-step latency rises with context; CS-3 stays nearly flat
    h_growth = h100[2048]["itl_per_step_ms"] / h100[128]["itl_per_step_ms"]
    c_growth = cs3[2048]["itl_per_step_ms"] / cs3[128]["itl_per_step_ms"]
    assert h_growth > 1.1
    assert c_growth < 1.05
