"""Overhead benchmark for the observability layer.

The whole point of ``Instrumentation.off()`` is that a disabled tracer
costs essentially nothing: every hook in the engine/scheduler/KV-cache is
guarded by ``if obs is not None and obs.active``, and a disabled
``SpanTracer`` early-returns before touching any state.  This file times a
reference serving run three ways — no instrumentation, disabled
instrumentation, full instrumentation — and asserts the disabled path
stays within 2% of the uninstrumented baseline.

Run with::

    pytest benchmarks/bench_obs_overhead.py --benchmark-only
"""

from __future__ import annotations

import time

from repro.obs.harness import reference_serving_run
from repro.obs.instrument import Instrumentation

_KWARGS = dict(num_requests=16, input_tokens=256, output_tokens=64)
# min-of-N wall time: the minimum is the least noisy location statistic
# for a deterministic workload on a shared machine.
_ROUNDS = 7
# absolute slack floor so a sub-millisecond baseline cannot fail on
# scheduler jitter alone
_ABS_SLACK_S = 2e-3


def _min_time(fn) -> float:
    best = float("inf")
    for _ in range(_ROUNDS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_instrumentation_overhead_under_two_percent():
    def baseline():
        return reference_serving_run(**_KWARGS)

    def disabled():
        return reference_serving_run(
            instrumentation=Instrumentation.off(), **_KWARGS
        )

    # warm-up: import costs, perf-model caches, allocator pools
    baseline()
    disabled()

    base_t = _min_time(baseline)
    off_t = _min_time(disabled)
    assert off_t <= base_t * 1.02 + _ABS_SLACK_S, (
        f"disabled instrumentation cost {off_t:.4f}s vs baseline "
        f"{base_t:.4f}s ({(off_t / base_t - 1) * 100:.2f}% overhead)"
    )


def test_baseline_run(benchmark):
    result = benchmark.pedantic(
        lambda: reference_serving_run(**_KWARGS), rounds=3, iterations=1
    )
    assert result.num_requests == _KWARGS["num_requests"]


def test_instrumentation_off_run(benchmark):
    result = benchmark.pedantic(
        lambda: reference_serving_run(
            instrumentation=Instrumentation.off(), **_KWARGS
        ),
        rounds=3,
        iterations=1,
    )
    assert result.num_requests == _KWARGS["num_requests"]


def test_instrumentation_on_run(benchmark):
    def run():
        return reference_serving_run(
            instrumentation=Instrumentation.on(), **_KWARGS
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.num_requests == _KWARGS["num_requests"]
