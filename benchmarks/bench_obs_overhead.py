"""Overhead benchmark for the observability layer.

The whole point of ``Instrumentation.off()`` is that a disabled tracer
costs essentially nothing: every hook in the engine/scheduler/KV-cache is
guarded by ``if obs is not None and obs.active``, and a disabled
``SpanTracer`` early-returns before touching any state.  The measurement
itself lives in :func:`repro.obs.regress.measure_disabled_overhead` so the
same <2% assertion also runs under ``repro bench --check``; this file is
the standalone pytest surface plus absolute-timing benchmarks of the
three instrumentation modes.

Run with::

    pytest benchmarks/bench_obs_overhead.py --benchmark-only
"""

from __future__ import annotations

from repro.obs.harness import reference_serving_run
from repro.obs.instrument import Instrumentation
from repro.obs.regress import measure_disabled_overhead

_KWARGS = dict(num_requests=16, input_tokens=256, output_tokens=64)


def test_disabled_instrumentation_overhead_under_two_percent():
    report = measure_disabled_overhead(**_KWARGS)
    assert report.within(), report.describe()


def test_baseline_run(benchmark):
    result = benchmark.pedantic(
        lambda: reference_serving_run(**_KWARGS), rounds=3, iterations=1
    )
    assert result.num_requests == _KWARGS["num_requests"]


def test_instrumentation_off_run(benchmark):
    result = benchmark.pedantic(
        lambda: reference_serving_run(
            instrumentation=Instrumentation.off(), **_KWARGS
        ),
        rounds=3,
        iterations=1,
    )
    assert result.num_requests == _KWARGS["num_requests"]


def test_instrumentation_on_run(benchmark):
    def run():
        return reference_serving_run(
            instrumentation=Instrumentation.on(), **_KWARGS
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.num_requests == _KWARGS["num_requests"]
