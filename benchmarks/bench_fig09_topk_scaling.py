"""Bench: regenerate Figure 9 (throughput vs active experts)."""


def test_fig09(run_exp):
    result = run_exp("fig9")
    table = result.table("hyperparameter grid")

    def thr(f, e, k):
        rows = table.where(ffn_dim=f, num_experts=e, top_k=k).rows
        return rows[0]["throughput_tok_s"]

    # consistent degradation 1 -> 8 active experts
    for f in (1792, 14336):
        assert thr(f, 8, 1) > thr(f, 8, 8)
    # the 1-vs-8 gap expands with FFN dimension (paper: 20-30% -> 60-80%)
    gap_small = thr(1792, 8, 1) / thr(1792, 8, 8)
    gap_large = thr(14336, 8, 1) / thr(14336, 8, 8)
    assert gap_large > gap_small
