"""Bench: regenerate Figure 18 (VLM throughput/latency vs accuracy)."""


def test_fig18(run_exp):
    result = run_exp("fig18")
    table = result.table("frontier")
    rows = {r["model"]: r for r in table}
    # paper: a clean inverse ladder across Tiny / Small / base
    assert (rows["DeepSeek-VL2-Tiny"]["throughput_tok_s"]
            > rows["DeepSeek-VL2-Small"]["throughput_tok_s"]
            > rows["DeepSeek-VL2"]["throughput_tok_s"])
    assert (rows["DeepSeek-VL2-Tiny"]["accuracy_pct"]
            < rows["DeepSeek-VL2-Small"]["accuracy_pct"]
            < rows["DeepSeek-VL2"]["accuracy_pct"])
    assert (rows["DeepSeek-VL2"]["e2e_latency_s"]
            > rows["DeepSeek-VL2-Tiny"]["e2e_latency_s"])
