"""Bench: regenerate Figure 8 (throughput vs total expert count)."""


def test_fig08(run_exp):
    result = run_exp("fig8")
    table = result.table("hyperparameter grid")
    # small-FFN configs tolerate 8->64 experts within a modest band
    small = {r["num_experts"]: r["throughput_tok_s"]
             for r in table if r["ffn_dim"] == 1792 and r["top_k"] == 2}
    assert 0.5 < small[64] / small[8] < 1.3
    # memory wall: extreme configs OOM, small ones never
    assert any(r["oom"] for r in table if r["ffn_dim"] == 14336)
    assert not any(r["oom"] for r in table if r["ffn_dim"] == 1792)
