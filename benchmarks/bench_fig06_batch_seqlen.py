"""Bench: regenerate Figure 6 (batch size x input/output length)."""


def test_fig06(run_exp):
    result = run_exp("fig6")
    table = result.table("throughput")
    assert len(table) == 2 * 5 * 5
    for model in ("DeepSeek-V2-Lite", "Qwen1.5-MoE-A2.7B"):
        thr = {r["io_tokens"]: r["throughput_tok_s"]
               for r in table.where(model=model, batch=64)}
        # paper: shortest sequences beat longest (paper quotes up to ~30%;
        # our simulator shows a stronger KV-driven gap — see EXPERIMENTS.md)
        assert 1.05 < thr[128] / thr[2048] < 2.5
    # paper: Qwen1.5-MoE outperforms DeepSeek-V2-Lite by 20-30%
    q = table.where(model="Qwen1.5-MoE-A2.7B", batch=32, io_tokens=512).rows[0]
    d = table.where(model="DeepSeek-V2-Lite", batch=32, io_tokens=512).rows[0]
    assert q["throughput_tok_s"] > d["throughput_tok_s"]
