"""Bench: end-to-end experiment-suite wall clock under the parallel runner.

Times one full pass over every registered experiment through
:func:`repro.runner.iter_experiments` and records the result into
``BENCH_wallclock.json`` via the fingerprint *wall* channel — wall metrics
never gate exactly (they vary with the machine), so this file is a flight
recorder for suite cost, not a drift gate.  The determinism contract it
does assert every run: results come back in the registry's fixed order and
every experiment succeeds.

Environment knobs:

``REPRO_BENCH_JOBS``
    Worker processes (default ``min(4, cpu_count)`` — a single-core host
    gains nothing from a pool, it only pays fork overhead).
``REPRO_BENCH_RECORD=1``
    Append the measurement to ``BENCH_wallclock.json`` (same switch the
    rest of the benchmark harness uses).
``REPRO_WALLCLOCK_BASELINE=<seconds>``
    Serial pre-fast-path suite cost to compare against.  When unset, the
    last recorded ``baseline_serial_s`` is reused, falling back to the sum
    of the committed per-experiment ``runtime_s`` wall metrics.
``REPRO_WALLCLOCK_GATE=1``
    Additionally assert ``speedup_vs_baseline >= 3`` — the fast-path
    target at ``--jobs 4``.  Opt-in because it needs >= 4 cores and a
    recorded baseline from the same host to be meaningful.
"""

from __future__ import annotations

import os
import pathlib
import time

from repro.core.experiment import ExperimentResult
from repro.core.registry import list_experiments
from repro.obs.fingerprint import Fingerprint
from repro.obs.regress import BaselineStore
from repro.runner import iter_experiments

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SPEEDUP_TARGET = 3.0


def _jobs() -> int:
    env = os.environ.get("REPRO_BENCH_JOBS", "").strip()
    if env:
        return max(1, int(env))
    return min(4, os.cpu_count() or 1)


def _baseline_serial_s(store: BaselineStore, exp_ids: list[str]) -> float:
    env = os.environ.get("REPRO_WALLCLOCK_BASELINE", "").strip()
    if env:
        return float(env)
    prior = store.latest_fingerprint("wallclock")
    if prior is not None and prior.wall.get("baseline_serial_s", 0.0) > 0:
        return prior.wall["baseline_serial_s"]
    total = 0.0
    for exp_id in exp_ids:
        fp = store.latest_fingerprint(exp_id)
        if fp is not None:
            total += fp.wall.get("runtime_s", 0.0)
    return total


def test_suite_wallclock():
    exp_ids = list_experiments()
    jobs = _jobs()

    start = time.perf_counter()
    outcomes = list(iter_experiments(exp_ids, jobs=jobs,
                                     return_exceptions=True,
                                     baseline_dir=REPO_ROOT))
    suite_wall_s = time.perf_counter() - start

    # the determinism half of the contract: fixed merge order, no failures
    assert [eid for eid, _ in outcomes] == exp_ids
    failed = [(eid, out) for eid, out in outcomes
              if not isinstance(out, ExperimentResult)]
    assert not failed, f"experiments failed under the runner: {failed}"

    store = BaselineStore(REPO_ROOT)
    baseline_serial_s = _baseline_serial_s(store, exp_ids)
    speedup = baseline_serial_s / suite_wall_s if suite_wall_s > 0 else 0.0

    fp = Fingerprint(exp_id="wallclock", wall={
        "suite_wall_s": suite_wall_s,
        "baseline_serial_s": baseline_serial_s,
        "speedup_vs_baseline": speedup,
        "jobs": float(jobs),
        "cpus": float(os.cpu_count() or 1),
        "num_experiments": float(len(exp_ids)),
    })
    print(f"\nsuite: {len(exp_ids)} experiments in {suite_wall_s:.2f}s "
          f"at --jobs {jobs} ({os.cpu_count()} cpus); serial baseline "
          f"{baseline_serial_s:.2f}s -> {speedup:.2f}x")
    if os.environ.get("REPRO_BENCH_RECORD"):
        store.record(fp, note=f"suite wallclock, jobs={jobs}")
    if os.environ.get("REPRO_WALLCLOCK_GATE"):
        assert speedup >= SPEEDUP_TARGET, (
            f"suite speedup {speedup:.2f}x is below the {SPEEDUP_TARGET}x "
            f"fast-path target (wall {suite_wall_s:.2f}s vs baseline "
            f"{baseline_serial_s:.2f}s)"
        )
