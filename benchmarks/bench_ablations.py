"""Bench: the design-choice ablations DESIGN.md calls out."""


def test_ablation_coverage(run_exp):
    result = run_exp("ablation_coverage")
    table = result.table("decode step time")
    over = {r["batch"]: r["overstatement_pct"] for r in table}
    # the coverage model matters most at batch 1 and vanishes at scale
    assert over[1] > over[64] > over[256]


def test_ablation_efficiency(run_exp):
    result = run_exp("ablation_efficiency")
    table = result.table("prefill time")
    under = {r["batch"]: r["flat_understates_pct"] for r in table}
    assert under[1] > under[64]
    assert under[1] > 10


def test_ablation_engine(run_exp):
    result = run_exp("ablation_engine")
    table = result.table("agreement")
    # without contention the event-driven engine must match closed form
    assert all(abs(r["delta_pct"]) < 5 for r in table)


def test_ablation_ep_imbalance(run_exp):
    result = run_exp("ablation_ep_imbalance")
    table = result.table("imbalance factor")
    assert all(r["abs_error"] < 0.3 for r in table)
    # imbalance decays with load in both the MC and the analytic model
    sub = [r for r in table if r["ep"] == 4]
    assert sub[0]["analytic"] > sub[-1]["analytic"]
