"""Bench: the extension studies (beyond the paper's figures)."""


def test_ext_a100(run_exp):
    result = run_exp("ext_a100")
    table = result.table("cross-hardware")
    h = table.where(model="OLMoE-1B-7B", hardware="H100", quant="fp16").rows[0]
    a = table.where(model="OLMoE-1B-7B", hardware="A100", quant="fp16").rows[0]
    assert h["throughput_tok_s"] > a["throughput_tok_s"]
    assert h["tokens_per_joule"] > a["tokens_per_joule"]


def test_ext_kv_quant(run_exp):
    result = run_exp("ext_kv_quant")
    table = result.table("kv quantization")
    fp8 = table.where(model="OLMoE-1B-7B", config="fp8").rows[0]
    kv8 = table.where(model="OLMoE-1B-7B", config="fp8+fp8kv").rows[0]
    assert kv8["max_context_tokens"] > 1.8 * fp8["max_context_tokens"]


def test_ext_serving_load(run_exp):
    result = run_exp("ext_serving_load")
    table = result.table("load sweep")
    p99 = [r["p99_ttft_s"] for r in table]
    assert p99[-1] > p99[0]


def test_ext_spec_batch(run_exp):
    result = run_exp("ext_spec_batch")
    table = result.table("speculation vs batching")
    speed = {r["batch"]: r["speedup"] for r in table}
    assert speed[64] > speed[1]


def test_ext_placement(run_exp):
    result = run_exp("ext_placement")
    table = result.table("placement comparison")
    molmo = table.where(model="MolmoE-1B", ep=8).rows[0]
    assert molmo["optimized_imbalance"] <= molmo["default_imbalance"]


def test_ext_multinode(run_exp):
    result = run_exp("ext_multinode")
    table = result.table("multinode dispatch")
    intra = table.where(ep=8).rows[0]
    inter = table.where(ep=16).rows[0]
    assert inter["alltoall_ms"] > intra["alltoall_ms"]


def test_ext_offload(run_exp):
    result = run_exp("ext_offload")
    table = result.table("offload sweep")
    full = table.where(hot_fraction=1.0, policy="random").rows[0]
    half = table.where(hot_fraction=0.5, policy="random").rows[0]
    assert half["decode_tok_s"] < full["decode_tok_s"]


def test_ext_capacity(run_exp):
    result = run_exp("ext_capacity")
    table = result.table("capacity sweep")
    bal = table.where(router="balanced", capacity_factor=1.25).rows[0]
    skw = table.where(router="skewed", capacity_factor=1.25).rows[0]
    assert skw["drop_rate_pct"] > 5 * max(bal["drop_rate_pct"], 0.1)


def test_ext_prefix_cache(run_exp):
    result = run_exp("ext_prefix_cache")
    table = result.table("prefix caching")
    off = table.where(shared_prefix_tokens=4096, caching="off").rows[0]
    on = table.where(shared_prefix_tokens=4096, caching="on").rows[0]
    assert on["mean_ttft_ms"] < 0.5 * off["mean_ttft_ms"]
