"""Bench: regenerate Figure 15 (expert activation frequency heatmaps)."""


def test_fig15(run_exp):
    result = run_exp("fig15")
    summary = result.table("activation summary")
    rows = {r["model"]: r for r in summary}
    assert set(rows) == {"DeepSeek-VL2-Tiny", "DeepSeek-VL2-Small",
                         "DeepSeek-VL2", "MolmoE-1B"}
    molmo = rows["MolmoE-1B"]
    deepseek_peak = max(r["peak_activation"] for m, r in rows.items()
                        if m != "MolmoE-1B")
    # paper: MolmoE peaks near 1M, DeepSeek family near 290K
    assert 5e5 < molmo["peak_activation"] < 2e6
    assert 1.5e5 < deepseek_peak < 6e5
    assert molmo["peak_activation"] > 2 * deepseek_peak
    # DeepSeek's aux loss flattens utilisation
    for m, r in rows.items():
        if m != "MolmoE-1B":
            assert r["gini"] < molmo["gini"]
