"""Hand-checked unit tests for the fleet control plane.

The hypothesis suite (``test_invariants_fleet.py``) drives the whole
simulator; these tests pin the individual policies to expectations a
reviewer can verify by hand: which replica each router picks from a
known snapshot, which arrivals admission sheds and why, which way the
autoscaler steps for given signals, and what the traffic synthesizers
emit for a fixed seed.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule, \
    replica_storm
from repro.fleet.admission import AdmissionConfig, AdmissionController
from repro.fleet.autoscaler import Autoscaler, AutoscalerConfig
from repro.fleet.router import LeastLoadedKVRouter, PrefixAffinityRouter, \
    ROUTER_POLICIES, RoundRobinRouter, make_router
from repro.fleet.simulator import FleetConfig
from repro.fleet.traffic import DiurnalSpec, TemplateMix, diurnal_arrivals, \
    diurnal_rate, synthesize_requests, template_block_hashes
from repro.serving.request import Request, SamplingParams
from repro.workloads.generator import LengthDistribution


class StubReplica:
    """Just the snapshot surface the routers read."""

    def __init__(self, replica_id: int, free_kv_blocks: int = 100,
                 load: int = 0) -> None:
        self.replica_id = replica_id
        self.free_kv_blocks = free_kv_blocks
        self.load = load


def _req(request_id: int = 0,
         hashes: tuple[int, ...] = ()) -> Request:
    return Request(request_id=request_id, prompt_tokens=64,
                   sampling=SamplingParams(max_tokens=8),
                   arrival_time=0.0, prompt_block_hashes=hashes)


# --------------------------------------------------------------------- #
# round robin
# --------------------------------------------------------------------- #

class TestRoundRobin:
    def test_cycles_in_id_order(self):
        router = RoundRobinRouter()
        replicas = [StubReplica(0), StubReplica(1), StubReplica(2)]
        picks = [router.choose(_req(i), replicas, 0.0).replica_id
                 for i in range(5)]
        assert picks == [0, 1, 2, 0, 1]

    def test_cursor_survives_membership_churn(self):
        # the cursor tracks the last *id*, so replacing replicas never
        # double-serves the survivor or skips the newcomer
        router = RoundRobinRouter()
        replicas = [StubReplica(0), StubReplica(1), StubReplica(2)]
        assert router.choose(_req(), replicas, 0.0).replica_id == 0
        assert router.choose(_req(), replicas, 0.0).replica_id == 1
        # replicas 1 and 2 die; replacement 3 spawns
        churned = [StubReplica(0), StubReplica(3)]
        assert router.choose(_req(), churned, 0.0).replica_id == 3
        assert router.choose(_req(), churned, 0.0).replica_id == 0

    def test_empty_snapshot_returns_none(self):
        assert RoundRobinRouter().choose(_req(), [], 0.0) is None


# --------------------------------------------------------------------- #
# least-loaded KV
# --------------------------------------------------------------------- #

class TestLeastLoadedKV:
    def test_picks_most_free_blocks(self):
        router = LeastLoadedKVRouter()
        replicas = [StubReplica(0, free_kv_blocks=10),
                    StubReplica(1, free_kv_blocks=40),
                    StubReplica(2, free_kv_blocks=25)]
        assert router.choose(_req(), replicas, 0.0).replica_id == 1

    def test_kv_tie_breaks_by_load_then_id(self):
        router = LeastLoadedKVRouter()
        by_load = [StubReplica(0, free_kv_blocks=40, load=5),
                   StubReplica(1, free_kv_blocks=40, load=2)]
        assert router.choose(_req(), by_load, 0.0).replica_id == 1
        by_id = [StubReplica(3, free_kv_blocks=40, load=2),
                 StubReplica(1, free_kv_blocks=40, load=2)]
        assert router.choose(_req(), by_id, 0.0).replica_id == 1


# --------------------------------------------------------------------- #
# prefix affinity
# --------------------------------------------------------------------- #

class TestPrefixAffinity:
    TEMPLATE = template_block_hashes(0, 4)

    def test_homes_first_sight_then_sticks(self):
        router = PrefixAffinityRouter()
        replicas = [StubReplica(0, free_kv_blocks=10),
                    StubReplica(1, free_kv_blocks=40)]
        # first sight: least-KV homes the template at replica 1
        assert router.choose(_req(0, self.TEMPLATE),
                             replicas, 0.0).replica_id == 1
        # replica 0 becomes much freer, but the template stays home
        replicas[0].free_kv_blocks = 400
        assert router.choose(_req(1, self.TEMPLATE),
                             replicas, 0.0).replica_id == 1

    def test_untemplated_falls_through_to_least_kv(self):
        router = PrefixAffinityRouter()
        replicas = [StubReplica(0, free_kv_blocks=10),
                    StubReplica(1, free_kv_blocks=40)]
        assert router.choose(_req(), replicas, 0.0).replica_id == 1

    def test_rehomes_when_home_leaves_the_snapshot(self):
        # dead/draining replicas never appear in the routable snapshot;
        # the template must re-home through the fallback, not blackhole
        router = PrefixAffinityRouter()
        home = StubReplica(0, free_kv_blocks=40)
        other = StubReplica(1, free_kv_blocks=10)
        assert router.choose(_req(0, self.TEMPLATE),
                             [home, other], 0.0).replica_id == 0
        assert router.choose(_req(1, self.TEMPLATE),
                             [other], 0.0).replica_id == 1
        # home 0 heals, but the template re-homed to 1 for good
        assert router.choose(_req(2, self.TEMPLATE),
                             [home, other], 0.0).replica_id == 1

    def test_load_escape_detours_without_rehoming(self):
        router = PrefixAffinityRouter(load_slack=2)
        # equal KV headroom: first sight ties through to id 0
        home = StubReplica(0, free_kv_blocks=40, load=0)
        other = StubReplica(1, free_kv_blocks=40, load=0)
        assert router.choose(_req(0, self.TEMPLATE),
                             [home, other], 0.0).replica_id == 0
        # home runs slack+1 deeper than the fleet minimum: detour
        home.load = 3
        assert router.choose(_req(1, self.TEMPLATE),
                             [home, other], 0.0).replica_id == 1
        # queue drains: the home was kept, stickiness resumes
        home.load = 1
        assert router.choose(_req(2, self.TEMPLATE),
                             [home, other], 0.0).replica_id == 0

    def test_pure_affinity_never_detours(self):
        router = PrefixAffinityRouter(load_slack=None)
        home = StubReplica(0, free_kv_blocks=40, load=0)
        other = StubReplica(1, free_kv_blocks=30, load=0)
        assert router.choose(_req(0, self.TEMPLATE),
                             [home, other], 0.0).replica_id == 0
        home.load = 10_000
        assert router.choose(_req(1, self.TEMPLATE),
                             [home, other], 0.0).replica_id == 0

    def test_exact_slack_boundary_stays_home(self):
        router = PrefixAffinityRouter(load_slack=2)
        home = StubReplica(0, free_kv_blocks=40, load=2)
        other = StubReplica(1, free_kv_blocks=30, load=0)
        assert router.choose(_req(0, self.TEMPLATE),
                             [home, other], 0.0).replica_id == 0
        # load == floor + slack is still within the leash
        assert router.choose(_req(1, self.TEMPLATE),
                             [home, other], 0.0).replica_id == 0


class TestMakeRouter:
    def test_builds_every_registered_policy(self):
        for policy in ROUTER_POLICIES:
            assert make_router(policy).name == policy

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown router policy"):
            make_router("coin_flip")

    def test_slack_reaches_only_affinity(self):
        assert make_router("prefix_affinity", load_slack=None).load_slack \
            is None
        assert make_router("round_robin", load_slack=None).name \
            == "round_robin"


# --------------------------------------------------------------------- #
# admission control
# --------------------------------------------------------------------- #

def _admission_replica(backlog: int = 0, num_blocks: int = 64,
                       block_size: int = 16) -> SimpleNamespace:
    return SimpleNamespace(
        backlog=backlog,
        engine=SimpleNamespace(kv=SimpleNamespace(num_blocks=num_blocks,
                                                  block_size=block_size)))


class TestAdmission:
    def test_no_replica_sheds(self):
        decision = AdmissionController().decide(_req(), [], 0.0)
        assert not decision.admit
        assert "no live replica" in decision.reason

    def test_oversized_request_sheds(self):
        # pool: 64 blocks x 16 tokens = 1024 KV slots
        replica = _admission_replica()
        big = Request(request_id=0, prompt_tokens=2048,
                      sampling=SamplingParams(max_tokens=8),
                      arrival_time=0.0)
        decision = AdmissionController().decide(big, [replica], 0.0)
        assert not decision.admit
        assert "KV slots" in decision.reason

    def test_backlog_cap_scales_with_routable_count(self):
        controller = AdmissionController(
            AdmissionConfig(max_backlog_per_replica=4))
        full = [_admission_replica(backlog=4), _admission_replica(backlog=4)]
        assert not controller.decide(_req(), full, 0.0).admit
        roomy = [_admission_replica(backlog=4), _admission_replica(backlog=3)]
        assert controller.decide(_req(), roomy, 0.0).admit

    def test_record_counts_outcomes(self):
        controller = AdmissionController()
        admitted = controller.decide(_req(), [_admission_replica()], 0.0)
        controller.record(admitted)
        shed = controller.decide(_req(), [], 0.0)
        controller.record(shed)
        assert controller.num_admitted == 1
        assert controller.num_shed == 1


# --------------------------------------------------------------------- #
# autoscaler decision table
# --------------------------------------------------------------------- #

class TestAutoscalerDecisions:
    CONFIG = AutoscalerConfig(min_replicas=1, max_replicas=4,
                              scale_up_backlog=8.0, scale_up_occupancy=0.85,
                              scale_down_occupancy=0.30, cooldown_ticks=2)

    def test_backlog_pressure_scales_up(self):
        scaler = Autoscaler(self.CONFIG)
        assert scaler.evaluate(1.0, 2, occupancy=0.5,
                               mean_backlog=9.0) == "up"

    def test_occupancy_pressure_scales_up(self):
        scaler = Autoscaler(self.CONFIG)
        assert scaler.evaluate(1.0, 2, occupancy=0.9,
                               mean_backlog=0.0) == "up"

    def test_saturated_at_ceiling_holds(self):
        scaler = Autoscaler(self.CONFIG)
        assert scaler.evaluate(1.0, 4, occupancy=0.95,
                               mean_backlog=20.0) == "hold"
        assert "ceiling" in scaler.decisions[-1].reason

    def test_idle_scales_down_until_floor(self):
        scaler = Autoscaler(self.CONFIG)
        assert scaler.evaluate(1.0, 2, occupancy=0.1,
                               mean_backlog=0.0) == "down"
        floor = Autoscaler(self.CONFIG)
        assert floor.evaluate(1.0, 1, occupancy=0.1,
                              mean_backlog=0.0) == "hold"
        assert "floor" in floor.decisions[-1].reason

    def test_below_floor_recovers_up(self):
        # replica-loss faults can push the routable count under the
        # floor; the next tick must pull it back regardless of signals
        scaler = Autoscaler(AutoscalerConfig(min_replicas=2, max_replicas=4))
        assert scaler.evaluate(1.0, 1, occupancy=0.0,
                               mean_backlog=0.0) == "up"

    def test_cooldown_suppresses_consecutive_actions(self):
        scaler = Autoscaler(self.CONFIG)
        assert scaler.evaluate(1.0, 2, occupancy=0.9,
                               mean_backlog=9.0) == "up"
        assert scaler.evaluate(1.5, 3, occupancy=0.9,
                               mean_backlog=9.0) == "hold"
        assert scaler.evaluate(2.0, 3, occupancy=0.9,
                               mean_backlog=9.0) == "hold"
        assert scaler.evaluate(2.5, 3, occupancy=0.9,
                               mean_backlog=9.0) == "up"

    def test_record_applied_patches_latest_decision(self):
        scaler = Autoscaler(self.CONFIG)
        scaler.evaluate(1.0, 2, occupancy=0.9, mean_backlog=9.0)
        scaler.record_applied(3)
        assert scaler.decisions[-1].replicas_before == 2
        assert scaler.decisions[-1].replicas_after == 3
        assert scaler.num_actions == 1


# --------------------------------------------------------------------- #
# traffic synthesis
# --------------------------------------------------------------------- #

class TestTraffic:
    SPEC = DiurnalSpec(base_rps=10.0, peak_rps=50.0, period_s=4.0)

    def test_diurnal_rate_endpoints(self):
        assert diurnal_rate(self.SPEC, 0.0) == pytest.approx(10.0)
        assert diurnal_rate(self.SPEC, 2.0) == pytest.approx(50.0)
        assert diurnal_rate(self.SPEC, 4.0) == pytest.approx(10.0)

    def test_arrivals_sorted_and_seed_stable(self):
        first = diurnal_arrivals(self.SPEC, 64, np.random.default_rng(5))
        again = diurnal_arrivals(self.SPEC, 64, np.random.default_rng(5))
        assert first.shape == (64,)
        assert np.all(np.diff(first) >= 0)
        assert np.array_equal(first, again)

    def test_template_hashes_unique_per_template_and_block(self):
        seen = set()
        for template_id in range(4):
            hashes = template_block_hashes(template_id, 8)
            assert len(hashes) == 8
            seen.update(hashes)
        assert len(seen) == 32

    def test_synthesized_templated_prompts_cover_their_prefix(self):
        rng = np.random.default_rng(3)
        mix = TemplateMix(num_templates=3, templated_fraction=1.0,
                          prefix_tokens=128)
        arrivals = diurnal_arrivals(self.SPEC, 32, rng)
        requests = synthesize_requests(
            32, rng, arrivals,
            lengths=LengthDistribution(mean_input=64, mean_output=8,
                                       sigma=0.3),
            templates=mix)
        assert len(requests) == 32
        for req in requests:
            assert req.prompt_block_hashes, "fraction 1.0 => all templated"
            assert len(req.prompt_block_hashes) == mix.prefix_blocks
            assert req.prompt_tokens > mix.prefix_tokens

    def test_untemplated_trace_has_no_hashes(self):
        rng = np.random.default_rng(3)
        arrivals = diurnal_arrivals(self.SPEC, 8, rng)
        requests = synthesize_requests(8, rng, arrivals)
        assert all(not r.prompt_block_hashes for r in requests)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            DiurnalSpec(base_rps=0.0, peak_rps=1.0, period_s=1.0)
        with pytest.raises(ValueError):
            DiurnalSpec(base_rps=2.0, peak_rps=1.0, period_s=1.0)
        with pytest.raises(ValueError):
            TemplateMix(prefix_tokens=8, block_size=16)
        with pytest.raises(ValueError):
            template_block_hashes(-1, 4)


# --------------------------------------------------------------------- #
# fleet-scope fault plumbing
# --------------------------------------------------------------------- #

class TestFleetFaultPlumbing:
    def test_fleet_config_rejects_engine_scope_faults(self):
        engine_fault = FaultSchedule(events=(
            FaultEvent(time=1.0, kind=FaultKind.DEVICE_LOSS),))
        with pytest.raises(ValueError, match="REPLICA_LOSS"):
            FleetConfig(replica_kills=engine_fault)

    def test_replica_storm_is_replica_loss_only(self):
        storm = replica_storm(11, horizon_s=10.0, rate_per_s=1.0,
                              num_replicas=4)
        assert storm.is_armed
        assert all(e.kind is FaultKind.REPLICA_LOSS for e in storm)

    def test_injector_rejects_replica_loss(self):
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(FaultSchedule(events=(
            FaultEvent(time=0.5, kind=FaultKind.REPLICA_LOSS),)))
        engine = SimpleNamespace()
        with pytest.raises(ValueError, match="fleet-scope"):
            injector.advance_to(1.0, engine)
