"""Tests for repro.parallel.hybrid (plan search)."""

from __future__ import annotations

import pytest

from repro.hardware.gpus import H100_SXM
from repro.models.zoo import MIXTRAL_8X7B, OLMOE_1B_7B, QWEN3_0_6B
from repro.parallel.hybrid import best_plan, enumerate_plans, evaluate_plan
from repro.parallel.plan import ParallelPlan


class TestEnumerate:
    def test_single_device(self):
        plans = enumerate_plans(OLMOE_1B_7B, 1)
        assert plans == [ParallelPlan()]

    def test_four_devices_includes_all_families(self):
        plans = enumerate_plans(MIXTRAL_8X7B, 4)
        labels = {p.label for p in plans}
        assert "TP4" in labels
        assert "TP4+EP4" in labels
        assert "TP1+PP4" in labels or "PP4" in {p.label for p in plans}

    def test_exact_device_usage(self):
        for p in enumerate_plans(MIXTRAL_8X7B, 4):
            assert p.num_devices == 4

    def test_dense_model_skips_ep(self):
        plans = enumerate_plans(QWEN3_0_6B, 4)
        assert all(p.ep == 1 for p in plans)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            enumerate_plans(OLMOE_1B_7B, 0)


class TestEvaluate:
    def test_evaluation_fields(self):
        ev = evaluate_plan(OLMOE_1B_7B, H100_SXM, ParallelPlan(tp=2), 8, 512, 256)
        assert ev.fits
        assert ev.throughput_tok_s > 0
        assert ev.weight_gb_per_device == pytest.approx(13.8 / 2, rel=0.05)

    def test_best_plan_prefers_tp(self):
        """Paper Fig. 13: TP wins on the H100 node."""
        best = best_plan(MIXTRAL_8X7B, H100_SXM, 4, 16, 1024, 1024)
        assert best.plan.tp == 4
        assert best.plan.pp == 1

    def test_best_plan_requires_fit(self):
        # Mixtral fp16 cannot fit a single device
        with pytest.raises(ValueError, match="fits"):
            best_plan(MIXTRAL_8X7B, H100_SXM, 1, 1, 128, 128)

    def test_best_plan_without_fit_requirement(self):
        ev = best_plan(MIXTRAL_8X7B, H100_SXM, 1, 1, 128, 128, require_fit=False)
        assert not ev.fits
