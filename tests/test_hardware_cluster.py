"""Tests for repro.hardware.cluster (multi-node hierarchical collectives)."""

from __future__ import annotations

import pytest

from repro.hardware.cluster import INFINIBAND_NDR, ClusterSpec
from repro.hardware.gpus import H100_SXM
from repro.hardware.interconnect import all_to_all_time, allreduce_time


@pytest.fixture
def cluster():
    return ClusterSpec(node=H100_SXM, num_nodes=4)


class TestClusterSpec:
    def test_total_devices(self, cluster):
        assert cluster.total_devices == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(node=H100_SXM, num_nodes=0)

    def test_infiniband_slower_than_nvlink(self):
        assert (INFINIBAND_NDR.link_bandwidth_gbps
                < H100_SXM.interconnect.link_bandwidth_gbps / 5)


class TestHierarchicalAllReduce:
    def test_single_node_matches_flat(self, cluster):
        flat = allreduce_time(1e8, 4, H100_SXM)
        assert cluster.allreduce_time(1e8, 4) == pytest.approx(flat)

    def test_crossing_nodes_costs_more(self, cluster):
        intra = cluster.allreduce_time(1e8, 8)     # one full node
        inter = cluster.allreduce_time(1e8, 16)    # two nodes
        assert inter > 1.5 * intra

    def test_grows_with_node_count(self, cluster):
        t2 = cluster.allreduce_time(1e8, 16)
        t4 = cluster.allreduce_time(1e8, 32)
        assert t4 > t2

    def test_device_bounds(self, cluster):
        with pytest.raises(ValueError):
            cluster.allreduce_time(1e6, 0)
        with pytest.raises(ValueError):
            cluster.allreduce_time(1e6, 33)


class TestHierarchicalAllToAll:
    def test_single_node_matches_flat(self, cluster):
        flat = all_to_all_time(1e8, 8, H100_SXM)
        assert cluster.all_to_all_time(1e8, 8) == pytest.approx(flat, rel=0.01)

    def test_cross_node_penalty(self, cluster):
        """The paper's multi-node EP warning: all-to-all across nodes is
        dominated by the slow fabric."""
        intra = cluster.all_to_all_time(1e8, 8)
        inter = cluster.all_to_all_time(1e8, 32)
        assert inter > 3 * intra

    def test_ep_dispatch(self, cluster):
        t8 = cluster.ep_dispatch_time(64, 4096, 2, 8)
        t32 = cluster.ep_dispatch_time(64, 4096, 2, 32)
        assert 0 < t8 < t32

    def test_ep_dispatch_validation(self, cluster):
        with pytest.raises(ValueError):
            cluster.ep_dispatch_time(0, 4096, 2, 8)


class TestDegradedInterNode:
    def test_slowdown_stretches_cross_node_collectives(self, cluster):
        degraded = cluster.with_degraded_inter_node(4.0)
        assert degraded.inter_node.link_bandwidth_gbps == pytest.approx(
            cluster.inter_node.link_bandwidth_gbps / 4.0)
        healthy = cluster.all_to_all_time(1e8, 32)
        slow = degraded.all_to_all_time(1e8, 32)
        assert slow > healthy
        # intra-node collectives never touch the degraded fabric
        assert degraded.all_to_all_time(1e8, 8) == cluster.all_to_all_time(1e8, 8)
