"""Tests for repro.perfmodel.energy."""

from __future__ import annotations

import pytest

from repro.hardware.gpus import A100_SXM, H100_SXM
from repro.models.zoo import OLMOE_1B_7B, get_model
from repro.optim.quantization import FP8_CONFIG
from repro.parallel.plan import ParallelPlan
from repro.perfmodel.energy import device_power_w, energy_for_generation
from repro.perfmodel.inference import InferencePerfModel


class TestDevicePower:
    def test_idle_floor_and_tdp_ceiling(self):
        assert device_power_w(H100_SXM, 0.0) == pytest.approx(0.3 * 700)
        assert device_power_w(H100_SXM, 1.0) == pytest.approx(700)

    def test_monotone(self):
        assert device_power_w(H100_SXM, 0.6) > device_power_w(H100_SXM, 0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            device_power_w(H100_SXM, 1.5)


class TestEnergyForGeneration:
    @pytest.fixture(scope="class")
    def pm(self):
        return InferencePerfModel(OLMOE_1B_7B, H100_SXM)

    def test_energy_positive_and_power_bounded(self, pm):
        m = pm.generate(16, 512, 256)
        e = energy_for_generation(pm, m)
        assert e.energy_j > 0
        assert 0.3 * 700 <= e.mean_power_w <= 700
        assert e.num_devices == 1
        assert e.energy_wh == pytest.approx(e.energy_j / 3600)

    def test_tokens_per_joule(self, pm):
        m = pm.generate(16, 512, 256)
        e = energy_for_generation(pm, m)
        tpj = e.tokens_per_joule(m.shape.total_tokens)
        # an H100 serving a small MoE: O(1-100) tokens per joule
        assert 0.5 < tpj < 1000
        with pytest.raises(ValueError):
            e.tokens_per_joule(0)

    def test_bigger_batch_more_efficient(self, pm):
        small = pm.generate(1, 512, 256)
        big = pm.generate(64, 512, 256)
        e_small = energy_for_generation(pm, small)
        e_big = energy_for_generation(pm, big)
        assert (e_big.tokens_per_joule(big.shape.total_tokens)
                > e_small.tokens_per_joule(small.shape.total_tokens))

    def test_more_devices_draw_more(self):
        m1 = InferencePerfModel(OLMOE_1B_7B, H100_SXM)
        m4 = InferencePerfModel(OLMOE_1B_7B, H100_SXM, plan=ParallelPlan(tp=4))
        g1 = m1.generate(16, 512, 256)
        g4 = m4.generate(16, 512, 256)
        e1 = energy_for_generation(m1, g1)
        e4 = energy_for_generation(m4, g4)
        assert e4.num_devices == 4
        # 4 GPUs finish faster but burn more instantaneous power; per-token
        # efficiency should not improve 4x
        assert (e4.tokens_per_joule(g4.shape.total_tokens)
                < 4 * e1.tokens_per_joule(g1.shape.total_tokens))

    def test_fp8_improves_efficiency(self):
        base = InferencePerfModel(get_model("Qwen3-30B-A3B"), H100_SXM)
        fp8 = InferencePerfModel(get_model("Qwen3-30B-A3B"), H100_SXM,
                                 quant=FP8_CONFIG)
        gb = base.generate(32, 512, 512, check_memory=False)
        g8 = fp8.generate(32, 512, 512, check_memory=False)
        eb = energy_for_generation(base, gb)
        e8 = energy_for_generation(fp8, g8)
        assert (e8.tokens_per_joule(g8.shape.total_tokens)
                > eb.tokens_per_joule(gb.shape.total_tokens))

    def test_a100_less_efficient_than_h100(self):
        h = InferencePerfModel(OLMOE_1B_7B, H100_SXM)
        a = InferencePerfModel(OLMOE_1B_7B, A100_SXM)
        gh = h.generate(32, 512, 512)
        ga = a.generate(32, 512, 512)
        eh = energy_for_generation(h, gh)
        ea = energy_for_generation(a, ga)
        assert (eh.tokens_per_joule(gh.shape.total_tokens)
                > ea.tokens_per_joule(ga.shape.total_tokens))
