"""Tests for repro.obs.trace (span tracer + Chrome Trace export)."""

from __future__ import annotations

import json

import pytest

from repro.obs.trace import SpanTracer


class TestSpans:
    def test_begin_end_records_balanced_events(self):
        t = SpanTracer()
        t.begin("outer", 0.0)
        t.begin("inner", 0.0)
        t.end(1.0)
        t.end(2.0)
        events = t.to_chrome_trace()["traceEvents"]
        begins = [e for e in events if e["ph"] == "B"]
        ends = [e for e in events if e["ph"] == "E"]
        assert [e["name"] for e in begins] == ["outer", "inner"]
        assert len(ends) == 2
        assert t.open_spans() == []

    def test_nesting_order_is_stack_like(self):
        t = SpanTracer()
        t.begin("outer", 0.0)
        t.begin("inner", 0.5)
        assert t.open_spans() == ["outer", "inner"]
        t.end(0.7)
        assert t.open_spans() == ["outer"]
        t.end(1.0)

    def test_end_without_begin_raises(self):
        t = SpanTracer()
        with pytest.raises(ValueError, match="no open span"):
            t.end(1.0)

    def test_end_before_begin_time_raises(self):
        t = SpanTracer()
        t.begin("s", 5.0)
        with pytest.raises(ValueError, match="before it began"):
            t.end(4.0)

    def test_tracks_are_independent_stacks(self):
        t = SpanTracer()
        t.begin("a", 0.0, track="one")
        t.begin("b", 0.0, track="two")
        t.end(1.0, track="one")
        assert t.open_spans("two") == ["b"]
        assert t.open_spans("one") == []
        t.end(1.0, track="two")

    def test_span_args_survive_export(self):
        t = SpanTracer()
        t.begin("s", 0.0, batch_size=4, phase="prefill")
        t.end(1.0)
        begin = [e for e in t.to_chrome_trace()["traceEvents"]
                 if e["ph"] == "B"][0]
        assert begin["args"] == {"batch_size": 4, "phase": "prefill"}

    def test_timestamps_exported_in_microseconds(self):
        t = SpanTracer()
        t.begin("s", 0.5)
        t.end(1.5)
        begin = [e for e in t.to_chrome_trace()["traceEvents"]
                 if e["ph"] == "B"][0]
        assert begin["ts"] == pytest.approx(0.5e6)


class TestDisabled:
    def test_disabled_records_nothing(self):
        t = SpanTracer(enabled=False)
        t.begin("s", 0.0)
        t.instant("i", 0.0)
        t.counter("c", 0.0, {"v": 1})
        t.end(1.0)  # must not raise despite no matching begin
        assert t.num_events == 0
        assert t.span_totals() == {}

    def test_disabled_wall_span_is_noop(self):
        t = SpanTracer(enabled=False)
        with t.wall_span("s"):
            pass
        assert t.num_events == 0


class TestAggregation:
    def test_span_totals_accumulate_per_name(self):
        t = SpanTracer()
        for i in range(3):
            t.begin("step", float(i))
            t.end(float(i) + 0.5)
        total, count = t.span_totals()["step"]
        assert total == pytest.approx(1.5)
        assert count == 3

    def test_span_totals_are_per_track(self):
        t = SpanTracer()
        t.begin("a", 0.0, track="one")
        t.end(1.0, track="one")
        assert "a" in t.span_totals("one")
        assert t.span_totals("two") == {}


class TestExport:
    def test_chrome_trace_is_valid_json(self, tmp_path):
        t = SpanTracer()
        t.begin("s", 0.0)
        t.instant("arrival", 0.1, request_id=7)
        t.counter("kv", 0.2, {"utilization": 0.5})
        t.end(1.0)
        path = t.write(tmp_path / "trace.json")
        data = json.loads(path.read_text())
        assert isinstance(data["traceEvents"], list)
        phases = {e["ph"] for e in data["traceEvents"]}
        assert {"B", "E", "i", "C", "M"} <= phases
        for e in data["traceEvents"]:
            assert "pid" in e and "tid" in e and "name" in e

    def test_thread_name_metadata_per_track(self):
        t = SpanTracer()
        t.begin("a", 0.0, track="engine")
        t.end(1.0, track="engine")
        with t.wall_span("b", track="perfmodel"):
            pass
        meta = [e for e in t.to_chrome_trace()["traceEvents"]
                if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert names == {"engine", "perfmodel"}

    def test_wall_span_records_positive_duration(self):
        t = SpanTracer()
        with t.wall_span("work"):
            sum(range(1000))
        total, count = t.span_totals("wall")["work"]
        assert count == 1
        assert total >= 0.0
