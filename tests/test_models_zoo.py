"""Tests for the model zoo."""

from __future__ import annotations

import pytest

from repro.models.config import AttentionKind
from repro.models.zoo import (
    ALL_MODELS,
    DRAFT_MODELS,
    LLM_MODELS,
    VLM_MODELS,
    get_model,
    list_models,
)


class TestZooContents:
    def test_paper_llms_present(self):
        for name in ("Mixtral-8x7B", "Qwen1.5-MoE-A2.7B", "Qwen3-30B-A3B",
                     "DeepSeek-V2-Lite", "Phi-3.5-MoE", "OLMoE-1B-7B"):
            assert name in LLM_MODELS

    def test_paper_vlms_present(self):
        for name in ("DeepSeek-VL2-Tiny", "DeepSeek-VL2-Small", "DeepSeek-VL2",
                     "MolmoE-1B"):
            assert name in VLM_MODELS

    def test_draft_models_are_dense(self):
        for model in DRAFT_MODELS.values():
            assert model.moe is None

    def test_vlms_have_vision_towers(self):
        for model in VLM_MODELS.values():
            assert model.vision is not None
            assert model.modality == "text+image"

    def test_table1_fields_match_paper(self):
        mixtral = get_model("Mixtral-8x7B")
        assert mixtral.num_layers == 32
        assert mixtral.hidden_size == 4096
        assert mixtral.moe.num_experts == 8
        assert mixtral.moe.top_k == 2
        phi = get_model("Phi-3.5-MoE")
        assert phi.moe.num_experts == 16
        assert phi.moe.top_k == 2
        qwen3 = get_model("Qwen3-30B-A3B")
        assert qwen3.moe.num_experts == 128
        assert qwen3.moe.top_k == 8

    def test_deepseek_uses_mla(self):
        assert get_model("DeepSeek-V2-Lite").attention.kind is AttentionKind.MLA

    def test_deepseek_first_layer_dense(self):
        m = get_model("DeepSeek-V2-Lite")
        assert not m.is_moe_layer(0)
        assert m.is_moe_layer(1)

    def test_molmoe_unbalanced_routing(self):
        assert get_model("MolmoE-1B").moe.balanced_routing is False
        assert get_model("DeepSeek-VL2").moe.balanced_routing is True

    def test_llama4_scout_top1(self):
        scout = get_model("Llama-4-Scout-17B-16E")
        assert scout.moe.top_k == 1
        assert scout.moe.num_shared_experts == 1


class TestLookup:
    def test_get_model_roundtrip(self):
        for name in list_models():
            assert get_model(name).name == name

    def test_unknown_model_raises_with_choices(self):
        with pytest.raises(KeyError, match="known models"):
            get_model("GPT-5")

    def test_list_models_sorted(self):
        names = list_models()
        assert names == sorted(names)
        assert len(names) == len(ALL_MODELS) == 15
