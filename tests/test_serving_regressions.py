"""Regression tests for latent serving bugs surfaced by the chaos suite.

Two preemption-path bugs, both found by the property-based invariant
suite rather than the feature tests:

* **chunked-prefill head-of-line deadlock** — a preempted request at the
  head of the waiting queue that cannot re-allocate (KV pressure) used to
  block the chunked-prefill continuations queued behind it; those
  continuations hold the very blocks the head is waiting for, so the
  engine starved with work still queued.
* **recompute token over-count** — re-prefilling a preempted sequence
  also wrote the newest sampled token's KV slot, which the next decode
  step then appended again: the sequence ran one slot ahead of token
  accounting (``kv_tokens == prompt + generated`` instead of
  ``prompt + generated - 1``) for the rest of its life.
"""

from __future__ import annotations

from collections import deque

import numpy as np
import pytest

from tests.invariants import drain_checked
from repro.hardware.gpus import H100_SXM
from repro.models.zoo import get_model
from repro.perfmodel.inference import InferencePerfModel
from repro.serving.engine import ServingEngine
from repro.serving.kv_cache import PagedKVCache
from repro.serving.request import Request, RequestState, SamplingParams
from repro.serving.scheduler import Scheduler, SchedulerConfig

MODEL = "OLMoE-1B-7B"


@pytest.fixture(scope="module")
def perf():
    return InferencePerfModel(get_model(MODEL), H100_SXM)


class TestChunkedPrefillDeadlock:
    def test_allocation_holder_passes_blocked_head(self):
        """The FCFS exception: a blocked (cannot-allocate) head must not
        stop a chunked continuation that already holds its blocks."""
        kv = PagedKVCache(num_blocks=6, block_size=16)
        sched = Scheduler(SchedulerConfig(
            enable_chunked_prefill=True, chunk_size=32, max_num_seqs=4,
        ), kv)
        # continuation: mid-chunk, holds its full-prompt allocation
        cont = Request(request_id=1, prompt_tokens=64,
                       sampling=SamplingParams(max_tokens=8))
        kv.allocate(1, cont.prefill_target)
        cont.kv_tokens = 32
        # head: preempted, and the pool (2 free blocks) can't readmit it
        head = Request(request_id=0, prompt_tokens=64,
                       sampling=SamplingParams(max_tokens=8))
        head.state = RequestState.PREEMPTED
        sched.waiting = deque([head, cont])

        batch = sched._schedule_prefill()
        assert [r.request_id for r in batch.requests] == [1]
        assert any(r is head for r in sched.waiting)  # head stays queued

    def test_blocked_head_still_blocks_new_admissions(self):
        """The exception is narrow: requests WITHOUT an allocation stay
        FCFS-blocked behind the head (no starvation inversion)."""
        kv = PagedKVCache(num_blocks=6, block_size=16)
        sched = Scheduler(SchedulerConfig(
            enable_chunked_prefill=True, chunk_size=32, max_num_seqs=4,
        ), kv)
        head = Request(request_id=0, prompt_tokens=96,
                       sampling=SamplingParams(max_tokens=8))
        head.state = RequestState.PREEMPTED
        small = Request(request_id=1, prompt_tokens=16,
                        sampling=SamplingParams(max_tokens=8))
        sched.waiting = deque([head, small])

        batch = sched._schedule_prefill()
        assert batch.is_empty
        assert len(sched.waiting) == 2

    def test_chunked_prefill_under_pressure_drains(self, perf):
        """End-to-end shape of the original deadlock: chunked prefill,
        decode-first policy, pool sized to force preemption mid-run."""
        engine = ServingEngine(
            perf,
            scheduler_config=SchedulerConfig(
                max_num_seqs=8, enable_chunked_prefill=True, chunk_size=64,
                policy="decode_first",
            ),
            kv_pool_tokens=1024,
            rng=np.random.default_rng(0),
        )
        for i in range(6):
            engine.submit(Request(
                request_id=i, prompt_tokens=192,
                sampling=SamplingParams(max_tokens=32),
                arrival_time=0.0,
            ))
        result = drain_checked(engine)
        assert result.availability == 1.0


class TestRecomputeTokenConservation:
    def test_preempted_and_resumed_requests_conserve_tokens(self, perf):
        """A run that preempts must still satisfy
        ``kv_tokens == prompt + generated - 1`` for every finished request
        (drain_checked enforces it; this test additionally demands that
        preemption actually happened, so the regression cannot pass
        vacuously)."""
        engine = ServingEngine(
            perf,
            scheduler_config=SchedulerConfig(max_num_seqs=8),
            kv_pool_tokens=768,
            rng=np.random.default_rng(0),
        )
        for i in range(5):
            engine.submit(Request(
                request_id=i, prompt_tokens=128,
                sampling=SamplingParams(max_tokens=64),
                arrival_time=0.0,
            ))
        result = drain_checked(engine)
        assert result.num_preemptions > 0
        for req in result.requests:
            assert req.is_finished
            assert req.kv_tokens == req.prompt_tokens + req.generated_tokens - 1

    def test_resumed_request_does_not_replay_first_token(self, perf):
        """After a recompute the resumed sequence must not re-sample its
        'first token' (generated_tokens stays monotone through preemption)."""
        engine = ServingEngine(
            perf,
            scheduler_config=SchedulerConfig(max_num_seqs=8),
            kv_pool_tokens=768,
            rng=np.random.default_rng(0),
        )
        for i in range(5):
            engine.submit(Request(
                request_id=i, prompt_tokens=128,
                sampling=SamplingParams(max_tokens=64),
                arrival_time=0.0,
            ))
        result = drain_checked(engine)
        preempted = [r for r in result.requests if r.num_preemptions > 0]
        assert preempted
        for req in preempted:
            assert req.generated_tokens == req.sampling.max_tokens
