"""Tests for repro.tensor.dtypes (quantization kernels)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor.dtypes import (
    DTYPES,
    FP8_E4M3,
    FP16,
    FP32,
    INT4,
    INT8,
    dequantize_int,
    get_dtype,
    quantize_dequantize,
    quantize_fp8,
    quantize_int,
)


class TestRegistry:
    def test_byte_widths(self):
        assert FP32.bytes_per_element == 4.0
        assert FP16.bytes_per_element == 2.0
        assert FP8_E4M3.bytes_per_element == 1.0
        assert INT4.bytes_per_element == 0.5

    def test_alias_fp8(self):
        assert get_dtype("fp8") is FP8_E4M3

    def test_get_dtype_passthrough(self):
        assert get_dtype(FP16) is FP16

    def test_get_dtype_case_insensitive(self):
        assert get_dtype("FP16") is FP16

    def test_unknown_dtype(self):
        with pytest.raises(KeyError, match="known dtypes"):
            get_dtype("fp4")

    def test_quantized_flags(self):
        assert FP8_E4M3.is_quantized and INT8.is_quantized and INT4.is_quantized
        assert not FP16.is_quantized and not FP32.is_quantized


class TestFP8:
    def test_exact_grid_points_preserved(self):
        # powers of two up to 256 are exactly representable in E4M3
        vals = np.array([0.5, 1.0, 2.0, 4.0, 256.0, -8.0])
        assert np.array_equal(quantize_fp8(vals), vals.astype(np.float32))

    def test_saturates_at_448(self):
        assert quantize_fp8(np.array([1e6]))[0] == 448.0
        assert quantize_fp8(np.array([-1e6]))[0] == -448.0

    def test_zero_preserved(self):
        assert quantize_fp8(np.array([0.0]))[0] == 0.0

    def test_three_mantissa_bits(self):
        # between 1.0 and 2.0 the grid step is 1/8
        x = np.array([1.0 + 1 / 16])
        q = quantize_fp8(x)[0]
        assert q in (1.0, 1.125)

    def test_relative_error_bounded(self, rng):
        x = rng.normal(0, 1, 1000).astype(np.float32)
        q = quantize_fp8(x)
        nz = np.abs(x) > 2 ** -6
        rel = np.abs(q[nz] - x[nz]) / np.abs(x[nz])
        assert rel.max() <= 1 / 16 + 1e-6  # half-step of 3 mantissa bits

    def test_idempotent(self, rng):
        x = rng.normal(0, 1, 100)
        once = quantize_fp8(x)
        assert np.array_equal(quantize_fp8(once), once)

    def test_subnormal_flush(self):
        tiny = np.array([2.0 ** -12])
        assert abs(quantize_fp8(tiny)[0]) <= 2.0 ** -9


class TestIntQuant:
    def test_roundtrip_error_int8(self, rng):
        x = rng.normal(0, 1, (16, 64)).astype(np.float32)
        q, s = quantize_int(x, 8)
        err = np.abs(dequantize_int(q, s) - x)
        step = np.abs(x).max(axis=-1, keepdims=True) / 127
        assert (err <= step / 2 + 1e-6).all()

    def test_int4_coarser_than_int8(self, rng):
        x = rng.normal(0, 1, 512).astype(np.float32)
        e8 = np.abs(quantize_dequantize(x, INT8) - x).mean()
        e4 = np.abs(quantize_dequantize(x, INT4) - x).mean()
        assert e4 > e8

    def test_levels_in_range(self, rng):
        x = rng.normal(0, 10, 256)
        q, _ = quantize_int(x, 4)
        assert q.min() >= -7 and q.max() <= 7

    def test_zero_row_handled(self):
        x = np.zeros((2, 8), dtype=np.float32)
        q, s = quantize_int(x, 8)
        assert np.array_equal(dequantize_int(q, s), x)

    def test_bad_bits_rejected(self):
        with pytest.raises(ValueError):
            quantize_int(np.ones(4), 5)


class TestQuantizeDequantize:
    def test_fp32_identity(self, rng):
        x = rng.normal(0, 1, 64).astype(np.float32)
        assert np.array_equal(quantize_dequantize(x, FP32), x)

    def test_fp16_matches_numpy_cast(self, rng):
        x = rng.normal(0, 1, 64).astype(np.float32)
        expected = x.astype(np.float16).astype(np.float32)
        assert np.array_equal(quantize_dequantize(x, FP16), expected)

    def test_bf16_drops_mantissa(self):
        x = np.array([1.0 + 2 ** -12], dtype=np.float32)
        q = quantize_dequantize(x, "bf16")
        # bf16 has 7 mantissa bits: 2^-12 is below the step at 1.0
        assert q[0] in (1.0, 1.0078125)

    def test_error_ordering_across_dtypes(self, rng):
        """Finer formats must round-trip with less error."""
        x = rng.normal(0, 1, 4096).astype(np.float32)
        errs = {
            name: float(np.abs(quantize_dequantize(x, name) - x).mean())
            for name in ("fp16", "fp8_e4m3", "int4")
        }
        assert errs["fp16"] < errs["fp8_e4m3"] < errs["int4"]
