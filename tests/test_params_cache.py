"""Regression tests: cached derived-parameter helpers equal the raw math.

``repro.models.params`` memoizes its pure counting helpers with
``functools.lru_cache`` and ``MemoryModel`` memoizes its per-deployment
byte constants; both are exact caches over frozen inputs, so every cached
value must equal a fresh uncached computation across the whole model zoo.
"""

from __future__ import annotations

import pytest

from repro.hardware.gpus import H100_SXM
from repro.models.params import layer_params, model_params
from repro.models.zoo import ALL_MODELS, get_model
from repro.perfmodel.memory import MemoryModel


@pytest.mark.parametrize("name", sorted(ALL_MODELS))
def test_model_params_cached_equals_uncached(name):
    model = get_model(name)
    cached = model_params(model)
    uncached = model_params.__wrapped__(model)
    assert cached == uncached
    # a second call returns the memo, not a recomputation
    assert model_params(model) is cached


@pytest.mark.parametrize("name", sorted(ALL_MODELS))
def test_layer_params_cached_equals_uncached(name):
    model = get_model(name)
    for layer_idx in (0, model.num_layers - 1):
        assert (layer_params(model, layer_idx)
                == layer_params.__wrapped__(model, layer_idx))


@pytest.mark.parametrize("name", sorted(ALL_MODELS))
def test_memory_model_memo_consistency(name):
    mm = MemoryModel(get_model(name), H100_SXM)
    fresh = MemoryModel(get_model(name), H100_SXM)
    # first call populates the memo; repeats return the identical float
    w = mm.weight_bytes_per_device()
    kv = mm.kv_bytes_per_token_per_device()
    assert mm.weight_bytes_per_device() == w == fresh.weight_bytes_per_device()
    assert (mm.kv_bytes_per_token_per_device() == kv
            == fresh.kv_bytes_per_token_per_device())
