"""Tests for repro.obs.fingerprint — deterministic experiment digests."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.results import ResultTable
from repro.obs.fingerprint import (
    SCHEMA_VERSION,
    Fingerprint,
    fingerprint_result,
)


def _result(latency0: float = 1.5, runtime_s: float = 0.25) -> ExperimentResult:
    table = ResultTable("latency sweep", ("batch", "latency_s", "tput_tok_s"))
    table.add(batch=1, latency_s=latency0, tput_tok_s=100.0)
    table.add(batch=2, latency_s=2.5, tput_tok_s=180.0)
    return ExperimentResult(
        exp_id="figX", title="t", paper_claim="c", tables=[table],
        runtime_s=runtime_s,
    )


class TestFingerprintResult:
    def test_deterministic(self):
        a = fingerprint_result(_result())
        b = fingerprint_result(_result())
        assert a.to_dict() == b.to_dict()

    def test_sim_metrics(self):
        fp = fingerprint_result(_result())
        assert fp.sim["latency sweep.latency_s:sum"] == 4.0
        assert fp.sim["latency sweep.latency_s:mean"] == 2.0
        assert fp.sim["latency sweep.batch:sum"] == 3.0

    def test_sim_time_total_excludes_rate_columns(self):
        # tput_tok_s ends in "_s" but is a rate, not a duration
        fp = fingerprint_result(_result())
        assert fp.sim["sim_time_total_s"] == 4.0

    def test_wall_kept_separate(self):
        fp = fingerprint_result(_result(runtime_s=0.7))
        assert fp.wall["runtime_s"] == 0.7
        assert "runtime_s" not in fp.sim

    def test_value_change_changes_digest_and_sums(self):
        a = fingerprint_result(_result(latency0=1.5))
        b = fingerprint_result(_result(latency0=1.5000001))
        assert a.digests["latency sweep"] != b.digests["latency sweep"]
        assert a.sim["latency sweep.latency_s:sum"] != \
            b.sim["latency sweep.latency_s:sum"]

    def test_wall_change_does_not_move_digest(self):
        a = fingerprint_result(_result(runtime_s=0.1))
        b = fingerprint_result(_result(runtime_s=9.9))
        assert a.digests == b.digests
        assert a.sim == b.sim

    def test_structure(self):
        fp = fingerprint_result(_result())
        assert fp.structure["latency sweep"] == {
            "rows": 2,
            "columns": ["batch", "latency_s", "tput_tok_s"],
        }

    def test_roundtrip(self):
        fp = fingerprint_result(_result())
        back = Fingerprint.from_dict(fp.to_dict())
        assert back.to_dict() == fp.to_dict()
        assert back.schema == SCHEMA_VERSION

    def test_experiment_result_method(self):
        fp = _result().fingerprint()
        assert fp.exp_id == "figX"
        assert fp.sim


class TestRealExperiment:
    def test_fig5_fingerprint_is_reproducible(self):
        from repro.core.registry import run_experiment

        a = fingerprint_result(run_experiment("fig5"))
        b = fingerprint_result(run_experiment("fig5"))
        assert a.sim == b.sim
        assert a.digests == b.digests
        # wall-clock runtimes legitimately differ between the two runs
        assert set(a.wall) == set(b.wall)
