"""Tests for repro.moe.pruning (paper §6.2 semantics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.config import MoEConfig
from repro.models.params import model_params
from repro.models.zoo import OLMOE_1B_7B
from repro.moe.layer import MoELayer
from repro.moe.pruning import (
    PAPER_PRUNING_RATIOS,
    PruningSpec,
    inter_expert_prune_config,
    inter_expert_prune_layer,
    intra_expert_prune_config,
    intra_expert_prune_layer,
    prune_model_config,
    select_experts_to_drop,
)


class TestSpec:
    def test_paper_ratios(self):
        assert PAPER_PRUNING_RATIOS == (0.125, 0.25, 0.50)

    def test_label(self):
        assert PruningSpec("inter", 0.125).label == "inter-12.5%"

    def test_validation(self):
        with pytest.raises(ValueError):
            PruningSpec("both", 0.5)
        with pytest.raises(ValueError):
            PruningSpec("inter", 1.0)


class TestConfigTransforms:
    def test_inter_removes_eighth(self):
        """Paper: 12.5% inter pruning removes 1/8 of experts (8 of 64)."""
        moe = MoEConfig(num_experts=64, top_k=8, expert_ffn_dim=128)
        assert inter_expert_prune_config(moe, 0.125).num_experts == 56

    def test_intra_shrinks_quarter(self):
        """Paper: 25% intra pruning reduces FFN dim by 1/4."""
        moe = MoEConfig(num_experts=8, top_k=2, expert_ffn_dim=1024)
        assert intra_expert_prune_config(moe, 0.25).expert_ffn_dim == 768

    def test_inter_keeps_top_k(self):
        moe = MoEConfig(num_experts=64, top_k=8, expert_ffn_dim=128)
        assert inter_expert_prune_config(moe, 0.5).top_k == 8

    def test_inter_cannot_drop_below_top_k(self):
        moe = MoEConfig(num_experts=8, top_k=6, expert_ffn_dim=128)
        with pytest.raises(ValueError, match="top_k"):
            inter_expert_prune_config(moe, 0.5)

    def test_prune_model_config_renames(self):
        pruned = prune_model_config(OLMOE_1B_7B, PruningSpec("inter", 0.25))
        assert "inter-25%" in pruned.name
        assert pruned.moe.num_experts == 48

    def test_prune_dense_model_rejected(self, tiny_dense_model):
        with pytest.raises(ValueError, match="MoE"):
            prune_model_config(tiny_dense_model, PruningSpec("intra", 0.25))

    def test_inter_reduces_total_not_active(self):
        base = model_params(OLMOE_1B_7B)
        pruned_cfg = prune_model_config(OLMOE_1B_7B, PruningSpec("inter", 0.5))
        pruned = model_params(pruned_cfg)
        assert pruned.total < base.total
        # active per token is ~unchanged (same top-k, same expert size;
        # only the router's dropped columns disappear)
        assert pruned.active == pytest.approx(base.active, rel=1e-2)

    def test_intra_reduces_both(self):
        base = model_params(OLMOE_1B_7B)
        pruned = model_params(prune_model_config(OLMOE_1B_7B, PruningSpec("intra", 0.5)))
        assert pruned.total < base.total
        assert pruned.active < base.active


class TestSelection:
    def test_drops_least_activated(self):
        counts = np.array([100, 5, 80, 1, 60, 2, 40, 3])
        drop = select_experts_to_drop(counts, 0.5)
        assert set(drop.tolist()) == {1, 3, 5, 7}

    def test_zero_ratio(self):
        assert select_experts_to_drop(np.arange(8), 0.01).size == 0

    def test_cannot_drop_all(self):
        with pytest.raises(ValueError):
            select_experts_to_drop(np.arange(4), 0.99)

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            select_experts_to_drop(np.ones((2, 2)), 0.5)


class TestLayerTransforms:
    def test_inter_layer_by_activation(self, rng, tiny_moe):
        layer = MoELayer(64, tiny_moe, rng=rng)
        counts = np.array([10, 1, 10, 1, 10, 10, 10, 10])
        pruned = inter_expert_prune_layer(layer, 0.25, activation_counts=counts)
        assert pruned.cfg.num_experts == 6
        assert pruned.experts[0] is layer.experts[0]
        assert pruned.experts[1] is layer.experts[2]

    def test_inter_layer_weight_criterion(self, rng, tiny_moe):
        layer = MoELayer(64, tiny_moe, rng=rng)
        pruned = inter_expert_prune_layer(layer, 0.5)
        assert pruned.cfg.num_experts == 4

    def test_intra_layer(self, rng, tiny_moe):
        layer = MoELayer(64, tiny_moe, rng=rng)
        pruned = intra_expert_prune_layer(layer, 0.5)
        assert pruned.cfg.expert_ffn_dim == 16
        x = rng.normal(0, 1, (5, 64)).astype(np.float32)
        assert pruned(x).hidden.shape == (5, 64)

    def test_inter_layer_zero_drop_returns_layer(self, rng, tiny_moe):
        layer = MoELayer(64, tiny_moe, rng=rng)
        assert inter_expert_prune_layer(layer, 0.01) is layer

    def test_pruned_outputs_correlate_with_original(self, rng, tiny_moe):
        """Mild intra pruning should perturb outputs much less than severe."""
        layer = MoELayer(64, tiny_moe, rng=rng)
        x = rng.normal(0, 1, (100, 64)).astype(np.float32)
        base = layer(x).hidden
        mild = np.abs(intra_expert_prune_layer(layer, 0.125)(x).hidden - base).mean()
        severe = np.abs(intra_expert_prune_layer(layer, 0.75)(x).hidden - base).mean()
        assert mild < severe
