"""Tests for repro.hardware.interconnect collective cost models."""

from __future__ import annotations

import pytest

from repro.hardware.gpus import H100_SXM
from repro.hardware.interconnect import (
    all_to_all_time,
    allgather_time,
    allreduce_time,
    p2p_time,
    reduce_scatter_time,
    require_interconnect,
)
from repro.hardware.spec import HardwareSpec


@pytest.fixture
def no_link_hw():
    return HardwareSpec(name="solo", peak_tflops={"fp16": 100.0},
                        memory_gb=16, mem_bandwidth_gbps=1000, interconnect=None)


class TestAllReduce:
    def test_single_device_free(self):
        assert allreduce_time(1e9, 1, H100_SXM) == 0.0

    def test_zero_bytes_free(self):
        assert allreduce_time(0, 4, H100_SXM) == 0.0

    def test_ring_volume_formula(self):
        """Large-message time ≈ 2(n-1)/n * bytes / bw."""
        n, bytes_ = 4, 450e9  # 1 second of link time
        t = allreduce_time(bytes_, n, H100_SXM)
        assert t == pytest.approx(2 * 3 / 4 * 1.0, rel=0.01)

    def test_latency_dominates_small_messages(self):
        t = allreduce_time(64, 4, H100_SXM)
        assert t == pytest.approx(2 * 3 * 3e-6, rel=0.05)

    def test_more_devices_costs_more(self):
        assert allreduce_time(1e8, 8, H100_SXM) > allreduce_time(1e8, 2, H100_SXM)

    def test_validation(self):
        with pytest.raises(ValueError):
            allreduce_time(-1, 2, H100_SXM)
        with pytest.raises(ValueError):
            allreduce_time(1, 0, H100_SXM)


class TestOtherCollectives:
    def test_reduce_scatter_half_of_allreduce(self):
        big = 450e9
        ar = allreduce_time(big, 4, H100_SXM)
        rs = reduce_scatter_time(big, 4, H100_SXM)
        assert rs == pytest.approx(ar / 2, rel=0.05)

    def test_all_to_all_volume(self):
        t = all_to_all_time(450e9, 4, H100_SXM)
        assert t == pytest.approx(3 / 4 * 1.0, rel=0.01)

    def test_allgather_positive(self):
        assert allgather_time(1e8, 4, H100_SXM) > 0

    def test_single_device_all_free(self):
        for fn in (all_to_all_time, allgather_time, reduce_scatter_time):
            assert fn(1e9, 1, H100_SXM) == 0.0

    def test_p2p(self):
        t = p2p_time(450e9, H100_SXM)
        assert t == pytest.approx(1.0 + 3e-6, rel=0.01)
        assert p2p_time(0, H100_SXM) == 0.0
        with pytest.raises(ValueError):
            p2p_time(-1, H100_SXM)


class TestMissingInterconnect:
    def test_require_interconnect_raises(self, no_link_hw):
        with pytest.raises(ValueError, match="no interconnect"):
            require_interconnect(no_link_hw)

    def test_collective_on_linkless_device(self, no_link_hw):
        with pytest.raises(ValueError):
            allreduce_time(1e6, 2, no_link_hw)


class TestDegradedInterconnect:
    def test_divides_bandwidth_and_tags_the_name(self):
        from repro.hardware.interconnect import degrade_interconnect

        link = require_interconnect(H100_SXM)
        slow = degrade_interconnect(link, 8.0)
        assert slow.link_bandwidth_gbps == pytest.approx(
            link.link_bandwidth_gbps / 8.0)
        assert slow.latency_us == link.latency_us
        assert slow.name.endswith("-degraded8x")

    def test_identity_slowdown_keeps_bandwidth(self):
        from repro.hardware.interconnect import degrade_interconnect

        link = require_interconnect(H100_SXM)
        assert degrade_interconnect(link, 1.0).link_bandwidth_gbps == \
            link.link_bandwidth_gbps

    def test_rejects_speedups(self):
        from repro.hardware.interconnect import degrade_interconnect

        with pytest.raises(ValueError):
            degrade_interconnect(require_interconnect(H100_SXM), 0.5)

    def test_pcie_fallback_is_about_8x_below_nvlink(self):
        from repro.hardware.interconnect import PCIE_GEN5_X16

        nvlink = require_interconnect(H100_SXM)
        ratio = nvlink.link_bandwidth_gbps / PCIE_GEN5_X16.link_bandwidth_gbps
        assert 6.0 < ratio < 10.0
