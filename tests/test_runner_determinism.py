"""Determinism tests for the multiprocessing experiment runner.

The contract: for any ``--jobs`` value, the merged result stream — and
everything derived from it (fingerprints, table digests) — is byte-stable.
Wall metrics are excluded; they are the only thing allowed to change.
"""

from __future__ import annotations

import json

import pytest

from repro.core.experiment import ExperimentResult
from repro.runner import default_jobs, iter_experiments, run_experiments

# one vectorized sweep, one table-driven summary, one chaos/engine run —
# the three result families the suite produces
REPRESENTATIVE = ["fig5", "table1", "ext_resilience"]


def _gated_fingerprint(result: ExperimentResult) -> str:
    data = result.fingerprint().to_dict()
    data.pop("wall")  # wall clock legitimately differs between runs
    return json.dumps(data, sort_keys=True)


class TestByteStability:
    def test_jobs1_vs_jobs4_fingerprints_identical(self):
        serial = run_experiments(REPRESENTATIVE, jobs=1)
        pooled = run_experiments(REPRESENTATIVE, jobs=4)
        for a, b in zip(serial, pooled):
            assert _gated_fingerprint(a) == _gated_fingerprint(b)

    def test_chaos_replay_identical_across_processes(self):
        from concurrent.futures import ProcessPoolExecutor

        from repro.faults.harness import ChaosConfig, chaos_run_digest
        from repro.runner import _pool_context

        config = ChaosConfig(num_requests=8, horizon_s=2.0)
        parent = chaos_run_digest(config)
        with ProcessPoolExecutor(max_workers=2,
                                 mp_context=_pool_context()) as pool:
            workers = [pool.submit(chaos_run_digest, config).result()
                       for _ in range(2)]
        assert workers == [parent, parent]


class TestMergeSemantics:
    def test_results_yield_in_input_order(self):
        ids = ["table1", "fig5", "ext_resilience"]  # not registry order
        seen = [eid for eid, _ in iter_experiments(ids, jobs=2)]
        assert seen == ids

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiments(["fig5", "no_such_experiment"], jobs=2)

    def test_return_exceptions_isolates_failures(self):
        outcomes = run_experiments(["no_such_experiment", "table1"], jobs=2,
                                   return_exceptions=True)
        assert isinstance(outcomes[0], KeyError)
        assert isinstance(outcomes[1], ExperimentResult)

    def test_serial_path_matches_pool_outcome_types(self):
        serial = run_experiments(["table1"], jobs=1)
        assert isinstance(serial[0], ExperimentResult)
        assert serial[0].exp_id == "table1"


class TestDefaultJobs:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert default_jobs() == 6

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert default_jobs() == 1

    def test_unset_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
