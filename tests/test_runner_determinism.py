"""Determinism tests for the multiprocessing experiment runner.

The contract: for any ``--jobs`` value, the merged result stream — and
everything derived from it (fingerprints, table digests) — is byte-stable.
Wall metrics are excluded; they are the only thing allowed to change.
"""

from __future__ import annotations

import json

import pytest

from repro.core.experiment import ExperimentResult
from repro.runner import default_jobs, iter_experiments, run_experiments

# one vectorized sweep, one table-driven summary, one chaos/engine run,
# one fleet run — the four result families the suite produces
REPRESENTATIVE = ["fig5", "table1", "ext_resilience", "ext_fleet_policy"]


def _gated_fingerprint(result: ExperimentResult) -> str:
    data = result.fingerprint().to_dict()
    data.pop("wall")  # wall clock legitimately differs between runs
    return json.dumps(data, sort_keys=True)


class TestByteStability:
    def test_jobs1_vs_jobs4_fingerprints_identical(self):
        serial = run_experiments(REPRESENTATIVE, jobs=1)
        pooled = run_experiments(REPRESENTATIVE, jobs=4)
        for a, b in zip(serial, pooled):
            assert _gated_fingerprint(a) == _gated_fingerprint(b)

    def test_chaos_replay_identical_across_processes(self):
        from concurrent.futures import ProcessPoolExecutor

        from repro.faults.harness import ChaosConfig, chaos_run_digest
        from repro.runner import _pool_context

        config = ChaosConfig(num_requests=8, horizon_s=2.0)
        parent = chaos_run_digest(config)
        with ProcessPoolExecutor(max_workers=2,
                                 mp_context=_pool_context()) as pool:
            workers = [pool.submit(chaos_run_digest, config).result()
                       for _ in range(2)]
        assert workers == [parent, parent]


class TestMergeSemantics:
    def test_results_yield_in_input_order(self):
        ids = ["table1", "fig5", "ext_resilience"]  # not registry order
        seen = [eid for eid, _ in iter_experiments(ids, jobs=2)]
        assert seen == ids

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiments(["fig5", "no_such_experiment"], jobs=2)

    def test_return_exceptions_isolates_failures(self):
        outcomes = run_experiments(["no_such_experiment", "table1"], jobs=2,
                                   return_exceptions=True)
        assert isinstance(outcomes[0], KeyError)
        assert isinstance(outcomes[1], ExperimentResult)

    def test_serial_path_matches_pool_outcome_types(self):
        serial = run_experiments(["table1"], jobs=1)
        assert isinstance(serial[0], ExperimentResult)
        assert serial[0].exp_id == "table1"


class TestSubmissionOrder:
    """The longest-first heuristic must have a sane cold-start story:
    experiments with no recorded baseline fall back to the static
    ``_RUNTIME_SEED_S`` table, and unknown ids to 0.0 — never an error,
    never a result change (submission order is wall-clock only)."""

    def test_seed_table_covers_unrecorded_fleet_experiments(self, tmp_path):
        from repro.runner import _RUNTIME_SEED_S, _recorded_runtime

        # tmp_path holds no BENCH_*.json: only the seed table can answer
        for exp_id, seconds in _RUNTIME_SEED_S.items():
            assert _recorded_runtime(exp_id, tmp_path) == seconds

    def test_unknown_experiment_falls_back_to_zero(self, tmp_path):
        from repro.runner import _recorded_runtime

        assert _recorded_runtime("no_such_experiment", tmp_path) == 0.0

    def test_recorded_baseline_wins_over_seed_table(self):
        import pathlib

        from repro.runner import _RUNTIME_SEED_S, _recorded_runtime

        root = pathlib.Path(__file__).resolve().parents[1]
        measured = _recorded_runtime("ext_fleet_policy", root)
        assert measured > 0.0
        assert measured != _RUNTIME_SEED_S["ext_fleet_policy"]

    def test_cold_start_submits_seeded_experiments_first(self, tmp_path):
        from repro.runner import _submission_order

        ids = ["fig5", "ext_fleet_policy", "ext_fleet_capacity"]
        order = _submission_order(ids, baseline_dir=tmp_path)
        # capacity (3.1 s) > policy (2.0 s) > fig5 (no hint, input order)
        assert order == ["ext_fleet_capacity", "ext_fleet_policy", "fig5"]

    def test_ties_keep_input_order(self, tmp_path):
        from repro.runner import _submission_order

        ids = ["table1", "fig5"]  # both unhinted -> both 0.0
        assert _submission_order(ids, baseline_dir=tmp_path) == ids


class TestDefaultJobs:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert default_jobs() == 6

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert default_jobs() == 1

    def test_unset_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
