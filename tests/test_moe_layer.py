"""Tests for repro.moe.layer (fused/unfused MoE layer)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.config import MoEConfig
from repro.moe.layer import MoELayer


@pytest.fixture
def layer(rng, tiny_moe):
    return MoELayer(64, tiny_moe, rng=rng)


class TestForward:
    def test_output_shape(self, layer, rng):
        x = rng.normal(0, 1, (12, 64)).astype(np.float32)
        out = layer(x)
        assert out.hidden.shape == (12, 64)
        assert out.routing.num_tokens == 12

    def test_fused_equals_unfused(self, layer, rng):
        """The two execution paths compute the same function."""
        x = rng.normal(0, 1, (40, 64)).astype(np.float32)
        fused = layer(x, mode="fused")
        unfused = layer(x, mode="unfused")
        assert np.allclose(fused.hidden, unfused.hidden, atol=1e-5)
        assert np.array_equal(fused.routing.indices, unfused.routing.indices)

    def test_fused_fewer_launches(self, layer, rng):
        x = rng.normal(0, 1, (8, 64)).astype(np.float32)
        assert layer(x, "fused").kernel_launches < layer(x, "unfused").kernel_launches

    def test_unknown_mode(self, layer):
        with pytest.raises(ValueError, match="mode"):
            layer(np.zeros((2, 64), np.float32), mode="magic")

    def test_wrong_hidden_size(self, layer):
        with pytest.raises(ValueError):
            layer(np.zeros((2, 63), np.float32))

    def test_single_token(self, layer, rng):
        x = rng.normal(0, 1, (1, 64)).astype(np.float32)
        assert layer(x).hidden.shape == (1, 64)

    def test_output_is_weighted_expert_combination(self, rng):
        """With top_k=1 the output must equal the selected expert's output
        scaled by its (renormalized == 1.0) weight."""
        cfg = MoEConfig(num_experts=4, top_k=1, expert_ffn_dim=16)
        layer = MoELayer(32, cfg, rng=rng)
        x = rng.normal(0, 1, (6, 32)).astype(np.float32)
        out = layer(x)
        for t in range(6):
            e = out.routing.indices[t, 0]
            expected = layer.experts[e](x[t : t + 1])[0]
            assert np.allclose(out.hidden[t], expected, atol=1e-5)


class TestSharedExperts:
    def test_shared_always_applied(self, rng):
        cfg = MoEConfig(num_experts=4, top_k=1, expert_ffn_dim=16,
                        num_shared_experts=2, shared_expert_ffn_dim=8)
        layer = MoELayer(32, cfg, rng=rng)
        x = rng.normal(0, 1, (5, 32)).astype(np.float32)
        out = layer(x)
        routed_only = np.zeros_like(x)
        for t in range(5):
            e = out.routing.indices[t, 0]
            routed_only[t] = layer.experts[e](x[t : t + 1])[0]
        shared = sum(s(x) for s in layer.shared_experts)
        assert np.allclose(out.hidden, routed_only + shared, atol=1e-5)

    def test_num_params_includes_shared(self, rng):
        cfg = MoEConfig(num_experts=4, top_k=1, expert_ffn_dim=16,
                        num_shared_experts=1, shared_expert_ffn_dim=8)
        layer = MoELayer(32, cfg, rng=rng)
        expected = 32 * 4 + 4 * 3 * 32 * 16 + 3 * 32 * 8
        assert layer.num_params == expected


class TestLayerPruning:
    def test_pruned_experts_forward(self, layer, rng):
        pruned = layer.pruned_experts(np.array([0, 1]))
        assert pruned.cfg.num_experts == 6
        x = rng.normal(0, 1, (10, 64)).astype(np.float32)
        out = pruned(x)
        assert out.hidden.shape == (10, 64)
        assert out.routing.num_experts == 6

    def test_pruned_experts_keeps_survivor_weights(self, layer, rng):
        pruned = layer.pruned_experts(np.array([0]))
        assert pruned.experts[0] is layer.experts[1]

    def test_pruned_ffn_forward(self, layer, rng):
        pruned = layer.pruned_ffn(0.5)
        assert pruned.cfg.expert_ffn_dim == 16
        x = rng.normal(0, 1, (10, 64)).astype(np.float32)
        assert pruned(x).hidden.shape == (10, 64)

    def test_pruned_ffn_ratio_bounds(self, layer):
        with pytest.raises(ValueError):
            layer.pruned_ffn(0.0)
        with pytest.raises(ValueError):
            layer.pruned_ffn(1.0)

    def test_cannot_remove_all_experts(self, layer):
        with pytest.raises(ValueError):
            layer.pruned_experts(np.arange(8))
