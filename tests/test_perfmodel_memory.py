"""Tests for repro.perfmodel.memory (footprint + OOM)."""

from __future__ import annotations

import pytest

from repro.hardware.gpus import H100_SXM
from repro.models.zoo import DEEPSEEK_V2_LITE, MIXTRAL_8X7B, OLMOE_1B_7B
from repro.optim.quantization import FP8_CONFIG, FP16_CONFIG
from repro.parallel.plan import ParallelPlan
from repro.perfmodel.memory import GPU_MEMORY_UTILIZATION, MemoryModel


class TestWeights:
    def test_single_device_weight_bytes(self):
        mm = MemoryModel(OLMOE_1B_7B, H100_SXM)
        # ~6.9B params at fp16 ≈ 13.8 GB
        assert mm.weight_bytes_per_device() == pytest.approx(13.8e9, rel=0.02)

    def test_tp_shards_weights(self):
        full = MemoryModel(MIXTRAL_8X7B, H100_SXM).weight_bytes_per_device()
        tp4 = MemoryModel(MIXTRAL_8X7B, H100_SXM,
                          plan=ParallelPlan(tp=4)).weight_bytes_per_device()
        assert tp4 == pytest.approx(full / 4, rel=0.01)

    def test_pp_shards_layers_not_embeddings(self):
        pp2 = MemoryModel(MIXTRAL_8X7B, H100_SXM,
                          plan=ParallelPlan(pp=2)).weight_bytes_per_device()
        full = MemoryModel(MIXTRAL_8X7B, H100_SXM).weight_bytes_per_device()
        assert full / 2 < pp2 < full / 1.9

    def test_fp8_halves_weights(self):
        f16 = MemoryModel(MIXTRAL_8X7B, H100_SXM).weight_bytes_per_device()
        f8 = MemoryModel(MIXTRAL_8X7B, H100_SXM,
                         quant=FP8_CONFIG).weight_bytes_per_device()
        assert f8 == pytest.approx(f16 / 2, rel=0.01)


class TestKVCache:
    def test_gqa_kv_per_token(self):
        mm = MemoryModel(MIXTRAL_8X7B, H100_SXM)
        expected = 32 * 2 * 8 * 128 * 2  # layers * 2 * kv_heads * dim * bytes
        assert mm.kv_bytes_per_token_per_device() == pytest.approx(expected)

    def test_native_mla_kv_much_smaller(self):
        mla = MemoryModel(DEEPSEEK_V2_LITE, H100_SXM,
                          mla_native=True).kv_bytes_per_token_per_device()
        gqa = MemoryModel(OLMOE_1B_7B, H100_SXM).kv_bytes_per_token_per_device()
        # MLA latent (576/layer) vs MHA (4096/layer): DeepSeek ~10x smaller
        assert mla < gqa / 3

    def test_materialized_mla_kv_is_large(self):
        """Default deployment (no native MLA kernels) caches decompressed
        K/V — bigger per layer than OLMoE's MHA."""
        mat = MemoryModel(DEEPSEEK_V2_LITE, H100_SXM).kv_bytes_per_token_per_device()
        nat = MemoryModel(DEEPSEEK_V2_LITE, H100_SXM,
                          mla_native=True).kv_bytes_per_token_per_device()
        assert mat > 5 * nat

    def test_tp_shards_gqa_kv(self):
        full = MemoryModel(MIXTRAL_8X7B, H100_SXM).kv_bytes_per_token_per_device()
        tp4 = MemoryModel(MIXTRAL_8X7B, H100_SXM,
                          plan=ParallelPlan(tp=4)).kv_bytes_per_token_per_device()
        assert tp4 == pytest.approx(full / 4)

    def test_tp_does_not_shard_native_mla_kv(self):
        full = MemoryModel(DEEPSEEK_V2_LITE, H100_SXM,
                           mla_native=True).kv_bytes_per_token_per_device()
        tp2 = MemoryModel(DEEPSEEK_V2_LITE, H100_SXM, plan=ParallelPlan(tp=2),
                          mla_native=True).kv_bytes_per_token_per_device()
        assert tp2 == pytest.approx(full)

    def test_tp_shards_materialized_mla_kv(self):
        full = MemoryModel(DEEPSEEK_V2_LITE, H100_SXM).kv_bytes_per_token_per_device()
        tp2 = MemoryModel(DEEPSEEK_V2_LITE, H100_SXM,
                          plan=ParallelPlan(tp=2)).kv_bytes_per_token_per_device()
        assert tp2 == pytest.approx(full / 2)

    def test_kv_cache_bytes_linear(self):
        mm = MemoryModel(OLMOE_1B_7B, H100_SXM)
        assert mm.kv_cache_bytes(4, 100) == pytest.approx(
            4 * 100 * mm.kv_bytes_per_token_per_device()
        )

    def test_negative_rejected(self):
        mm = MemoryModel(OLMOE_1B_7B, H100_SXM)
        with pytest.raises(ValueError):
            mm.kv_cache_bytes(-1, 10)


class TestOOM:
    def test_small_model_fits(self):
        assert MemoryModel(OLMOE_1B_7B, H100_SXM).fits(16, 4096)

    def test_mixtral_fp16_needs_multiple_gpus(self):
        """47B params at fp16 = 94 GB > 80 GB: the paper's motivation for
        TP deployment."""
        assert not MemoryModel(MIXTRAL_8X7B, H100_SXM).fits(1, 128)
        assert MemoryModel(MIXTRAL_8X7B, H100_SXM, plan=ParallelPlan(tp=2)).fits(1, 128)

    def test_large_batch_long_context_ooms(self):
        mm = MemoryModel(OLMOE_1B_7B, H100_SXM)
        assert mm.fits(1, 2048)
        assert not mm.fits(512, 8192)

    def test_budget_respects_utilization(self):
        mm = MemoryModel(OLMOE_1B_7B, H100_SXM)
        assert mm.budget_bytes() == pytest.approx(
            H100_SXM.memory_bytes * GPU_MEMORY_UTILIZATION
        )

    def test_max_context_tokens_positive_and_bounded(self):
        mm = MemoryModel(OLMOE_1B_7B, H100_SXM)
        cap = mm.max_context_tokens()
        assert cap > 10_000
        assert cap * mm.kv_bytes_per_token_per_device() < mm.budget_bytes()

    def test_breakdown_sums(self):
        mm = MemoryModel(OLMOE_1B_7B, H100_SXM)
        bd = mm.breakdown(8, 1024)
        assert bd.total == bd.weights + bd.kv_cache + bd.activations + bd.overhead
        assert bd.total_gb() == pytest.approx(bd.total / 1e9)
