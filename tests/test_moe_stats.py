"""Tests for repro.moe.stats (activation tracking, Fig. 15 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.moe.router import TopKRouter
from repro.moe.stats import ExpertActivationTracker, balance_metrics


class TestBalanceMetrics:
    def test_uniform_counts(self):
        m = balance_metrics(np.full(8, 100))
        assert m.imbalance == pytest.approx(1.0)
        assert m.cv == pytest.approx(0.0)
        assert m.normalized_entropy == pytest.approx(1.0)
        assert m.gini == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_counts(self):
        counts = np.zeros(8)
        counts[0] = 800
        m = balance_metrics(counts)
        assert m.imbalance == pytest.approx(8.0)
        assert m.normalized_entropy == pytest.approx(0.0, abs=1e-9)
        assert m.gini == pytest.approx(7 / 8, rel=1e-6)

    def test_gini_monotone_in_skew(self):
        mild = balance_metrics(np.array([90, 100, 110, 100]))
        harsh = balance_metrics(np.array([10, 100, 200, 90]))
        assert harsh.gini > mild.gini

    def test_zero_counts(self):
        m = balance_metrics(np.zeros(4))
        assert m.imbalance == 1.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            balance_metrics(np.array([1, -1]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            balance_metrics(np.array([]))


class TestTracker:
    def test_record_routing(self, rng):
        router = TopKRouter(16, 8, 2, rng=rng)
        tracker = ExpertActivationTracker(num_layers=2, num_experts=8)
        x = rng.normal(0, 1, (25, 16)).astype(np.float32)
        r = router.route(x)
        tracker.record(0, r)
        tracker.record(1, r)
        hm = tracker.heatmap()
        assert hm.shape == (2, 8)
        assert hm.sum() == 2 * 25 * 2
        assert tracker.tokens_seen == 25

    def test_record_counts(self):
        tracker = ExpertActivationTracker(1, 4)
        tracker.record_counts(0, np.array([1, 2, 3, 4]))
        tracker.record_counts(0, np.array([1, 0, 0, 0]))
        assert tracker.heatmap()[0].tolist() == [2, 2, 3, 4]

    def test_peak_activation(self):
        tracker = ExpertActivationTracker(2, 3)
        tracker.record_counts(0, np.array([5, 1, 0]))
        tracker.record_counts(1, np.array([0, 9, 2]))
        assert tracker.peak_activation() == 9

    def test_layer_and_overall_metrics(self):
        tracker = ExpertActivationTracker(2, 4)
        tracker.record_counts(0, np.array([10, 10, 10, 10]))
        tracker.record_counts(1, np.array([40, 0, 0, 0]))
        assert tracker.layer_metrics(0).imbalance == pytest.approx(1.0)
        assert tracker.layer_metrics(1).imbalance == pytest.approx(4.0)
        assert tracker.overall_metrics().imbalance == pytest.approx(
            50 / 20
        )

    def test_shape_validation(self, rng):
        tracker = ExpertActivationTracker(1, 4)
        with pytest.raises(ValueError):
            tracker.record_counts(0, np.ones(5))
        with pytest.raises(IndexError):
            tracker.record_counts(1, np.ones(4))
        router = TopKRouter(8, 6, 1, rng=rng)
        with pytest.raises(ValueError, match="experts"):
            tracker.record(0, router.route(rng.normal(0, 1, (3, 8)).astype(np.float32)))

    def test_reset(self):
        tracker = ExpertActivationTracker(1, 2)
        tracker.record_counts(0, np.array([1, 1]))
        tracker.reset()
        assert tracker.heatmap().sum() == 0
