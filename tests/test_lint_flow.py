"""Interprocedural flow engine: symbol table, call graph, determinism
taint (DET1xx), unit flow (UNIT1xx), incremental cache, graph export."""

import pathlib
import textwrap
import time

import pytest

from repro.lint.core import LintProject, get_rule, run_lint
from repro.lint.flow import engine
from repro.lint.flow.graph import Program, to_dot, to_json_doc
from repro.lint.flow.summary import module_name_for, summarize_source
from repro.lint.flow.taint import taint_report

REPO = pathlib.Path(__file__).resolve().parents[1]


def make_project(tmp_path, files: dict[str, str]) -> LintProject:
    for rel, text in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(text).lstrip("\n"))
    return LintProject(tmp_path)


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path):
    # tests control cache placement explicitly; never touch the repo's
    engine.configure(cache=False)
    yield
    engine.configure()
    engine._MEMO.clear()


class TestModuleNames:
    def test_plain_module(self):
        assert module_name_for("src/repro/serving/engine.py") == \
            "repro.serving.engine"

    def test_package_init(self):
        assert module_name_for("src/repro/obs/__init__.py") == "repro.obs"


class TestCallGraph:
    def test_imported_function_edge(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/a.py": """
                from repro.b import helper

                def caller():
                    return helper()
            """,
            "src/repro/b.py": """
                def helper():
                    return 1
            """,
        })
        program = engine.program_for(project)
        edges = {(c, e.callee) for c in program.edges
                 for e in program.edges[c]}
        assert ("repro.a.caller", "repro.b.helper") in edges

    def test_self_method_and_attr_type_edges(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/m.py": """
                from repro.n import Worker

                class Owner:
                    def __init__(self):
                        self.w = Worker()

                    def go(self):
                        self.step()
                        return self.w.run()

                    def step(self):
                        return 0
            """,
            "src/repro/n.py": """
                class Worker:
                    def run(self):
                        return 1
            """,
        })
        program = engine.program_for(project)
        edges = {(c, e.callee) for c in program.edges
                 for e in program.edges[c]}
        assert ("repro.m.Owner.go", "repro.m.Owner.step") in edges
        assert ("repro.m.Owner.go", "repro.n.Worker.run") in edges

    def test_local_constructor_var_edge(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/m.py": """
                from repro.n import Worker

                def go():
                    w = Worker()
                    return w.run()
            """,
            "src/repro/n.py": """
                class Worker:
                    def run(self):
                        return 1
            """,
        })
        program = engine.program_for(project)
        edges = {(c, e.callee) for c in program.edges
                 for e in program.edges[c]}
        assert ("repro.m.go", "repro.n.Worker.run") in edges

    def test_base_class_method_resolves(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/m.py": """
                from repro.n import Base

                class Child(Base):
                    def go(self):
                        return self.inherited()
            """,
            "src/repro/n.py": """
                class Base:
                    def inherited(self):
                        return 1
            """,
        })
        program = engine.program_for(project)
        edges = {(c, e.callee) for c in program.edges
                 for e in program.edges[c]}
        assert ("repro.m.Child.go", "repro.n.Base.inherited") in edges

    def test_repo_graph_builds(self):
        program = engine.program_for(LintProject(REPO))
        assert program.stats["functions"] > 500
        assert program.stats["edges"] > 1000


# a wall read laundered through TWO helpers in separate modules before
# reaching a digest-bearing root (repro.fleet.invariants.* is a root)
LAUNDERED = {
    "src/repro/fleet/invariants.py": """
        from repro.util_a import stamp_a

        def fleet_digest():
            return stamp_a()
    """,
    "src/repro/util_a.py": """
        from repro.util_b import stamp_b

        def stamp_a():
            return stamp_b() + 1.0
    """,
    "src/repro/util_b.py": """
        import time

        def stamp_b():
            return time.time()
    """,
}


class TestDeterminismTaint:
    def test_laundered_wall_read_caught_with_full_chain(self, tmp_path):
        project = make_project(tmp_path, LAUNDERED)
        vs = run_lint(tmp_path, rules=[get_rule("DET101")], project=project)
        assert [v.rule for v in vs] == ["DET101"]
        v = vs[0]
        # anchored at the source line, chain names every hop
        assert v.path == "src/repro/util_b.py"
        assert "time.time" in v.snippet
        assert ("repro.fleet.invariants.fleet_digest -> "
                "repro.util_a.stamp_a -> repro.util_b.stamp_b") in v.message

    def test_unreached_source_is_not_a_violation(self, tmp_path):
        files = dict(LAUNDERED)
        # cut the chain: the root no longer calls the laundering helper
        files["src/repro/fleet/invariants.py"] = """
            def fleet_digest():
                return 0.0
        """
        project = make_project(tmp_path, files)
        vs = run_lint(tmp_path, rules=[get_rule("DET101")], project=project)
        assert vs == []

    def test_experiment_decorator_is_a_root(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/exp.py": """
                from repro.core.registry import experiment
                from repro.util_b import stamp_b

                @experiment("fig99")
                def run():
                    return stamp_b()
            """,
            "src/repro/util_b.py": LAUNDERED["src/repro/util_b.py"],
        })
        vs = run_lint(tmp_path, rules=[get_rule("DET101")], project=project)
        assert [v.rule for v in vs] == ["DET101"]
        assert "repro.exp.run -> repro.util_b.stamp_b" in vs[0].message

    def test_wall_channel_sanitizes_source_and_path(self, tmp_path):
        project = make_project(tmp_path, {
            # source inside a wall-channel module: by-design, not taint
            "src/repro/runner.py": """
                import time

                def wall_now():
                    return time.time()
            """,
            "src/repro/fleet/invariants.py": """
                from repro.runner import wall_now

                def fleet_digest():
                    return wall_now()
            """,
        })
        vs = run_lint(tmp_path, rules=[get_rule("DET101")], project=project)
        assert vs == []

    def test_rng_taint(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/fleet/invariants.py": """
                from repro.util_c import jitter

                def fleet_digest():
                    return jitter()
            """,
            "src/repro/util_c.py": """
                import random

                def jitter():
                    return random.random()
            """,
        })
        vs = run_lint(tmp_path, rules=[get_rule("DET102")], project=project)
        assert [v.rule for v in vs] == ["DET102"]

    def test_set_order_taint(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/fleet/invariants.py": """
                from repro.util_d import total

                def fleet_digest():
                    return total()
            """,
            "src/repro/util_d.py": """
                def total():
                    acc = 0
                    for x in {1, 2, 3}:
                        acc += x
                    return acc
            """,
        })
        vs = run_lint(tmp_path, rules=[get_rule("DET103")], project=project)
        assert [v.rule for v in vs] == ["DET103"]

    def test_local_suppression_carries_over(self, tmp_path):
        files = dict(LAUNDERED)
        files["src/repro/util_b.py"] = """
            import time

            def stamp_b():
                return time.time()  # simlint: disable=DET001
        """
        project = make_project(tmp_path, files)
        vs = run_lint(tmp_path, rules=[get_rule("DET101")], project=project)
        assert vs == []

    def test_repo_is_taint_clean(self):
        project = LintProject(REPO)
        program = engine.program_for(project)
        report = taint_report(program, project)
        assert report.findings == []
        assert len(report.roots) > 50  # experiments + serving/fleet surface


class TestUnitFlow:
    def test_arg_unit_mismatch_across_modules(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/perfmodel/costs.py": """
                def scale(latency_s):
                    return latency_s * 2.0
            """,
            "src/repro/driver.py": """
                from repro.perfmodel.costs import scale

                def go(buf_bytes):
                    return scale(buf_bytes)
            """,
        })
        vs = run_lint(tmp_path, rules=[get_rule("UNIT101")], project=project)
        assert [v.rule for v in vs] == ["UNIT101"]
        assert "latency_s" in vs[0].message and "'bytes'" in vs[0].message

    def test_matching_arg_unit_is_clean(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/perfmodel/costs.py": """
                def scale(latency_s):
                    return latency_s * 2.0

                def go(dur_s):
                    return scale(dur_s)
            """,
        })
        vs = run_lint(tmp_path, rules=[get_rule("UNIT101")], project=project)
        assert vs == []

    def test_return_unit_mix(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/perfmodel/costs.py": """
                def elapsed(dur_s):
                    return dur_s

                def go(n_bytes):
                    return elapsed(1.0) + n_bytes
            """,
        })
        vs = run_lint(tmp_path, rules=[get_rule("UNIT102")], project=project)
        assert [v.rule for v in vs] == ["UNIT102"]
        assert "'s'" in vs[0].message and "'bytes'" in vs[0].message

    def test_return_unit_vs_name_through_delegation(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/perfmodel/costs.py": """
                def raw(dur_us):
                    return dur_us

                def window_s(dur_us):
                    return raw(dur_us)
            """,
        })
        vs = run_lint(tmp_path, rules=[get_rule("UNIT103")], project=project)
        assert [v.rule for v in vs] == ["UNIT103"]
        assert "window_s" in vs[0].message and "'us'" in vs[0].message

    def test_out_of_scope_modules_are_quiet(self, tmp_path):
        # the same mismatch outside perfmodel/hardware: not our beat
        project = make_project(tmp_path, {
            "src/repro/misc.py": """
                def scale(latency_s):
                    return latency_s * 2.0

                def go(buf_bytes):
                    return scale(buf_bytes)
            """,
        })
        for rid in ("UNIT101", "UNIT102", "UNIT103"):
            assert run_lint(tmp_path, rules=[get_rule(rid)],
                            project=project) == []

    def test_recursion_infers_nothing(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/perfmodel/costs.py": """
                def window_s(n):
                    return window_s(n - 1)
            """,
        })
        vs = run_lint(tmp_path, rules=[get_rule("UNIT103")], project=project)
        assert vs == []


class TestIncrementalCache:
    def test_warm_run_hits_and_is_byte_identical(self, tmp_path):
        cache = tmp_path / "flow.json"
        engine.configure(cache=True, cache_path=cache)
        project = LintProject(REPO)
        n = len(project.files)

        t0 = time.perf_counter()
        cold = engine.program_for(project)
        cold_s = time.perf_counter() - t0
        assert cold.stats["cache_misses"] == n
        assert cache.is_file()

        engine._MEMO.clear()  # force the disk path, not the memo
        t0 = time.perf_counter()
        warm = engine.program_for(LintProject(REPO))
        warm_s = time.perf_counter() - t0
        assert warm.stats["cache_hits"] == n
        assert warm.stats["cache_misses"] == 0
        assert to_json_doc(warm) == to_json_doc(cold)
        assert warm_s < cold_s  # summaries load as JSON, no AST walks

    def test_changed_file_invalidates_only_itself(self, tmp_path):
        cache = tmp_path / "flow.json"
        engine.configure(cache=True, cache_path=cache)
        files = {
            "src/repro/a.py": "def f():\n    return 1\n",
            "src/repro/b.py": "def g():\n    return 2\n",
        }
        project = make_project(tmp_path, files)
        engine.program_for(project)
        (tmp_path / "src/repro/a.py").write_text(
            "def f():\n    return 3\n")
        engine._MEMO.clear()
        warm = engine.program_for(LintProject(tmp_path))
        assert warm.stats["cache_hits"] == 1
        assert warm.stats["cache_misses"] == 1

    def test_corrupt_cache_falls_back_to_cold(self, tmp_path):
        cache = tmp_path / "flow.json"
        cache.write_text("{not json")
        engine.configure(cache=True, cache_path=cache)
        project = make_project(tmp_path, {
            "src/repro/a.py": "def f():\n    return 1\n"})
        program = engine.program_for(project)
        assert program.stats["cache_misses"] == 1

    def test_env_var_disables_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LINT_NO_CACHE", "1")
        engine.configure(cache=True, cache_path=tmp_path / "flow.json")
        project = make_project(tmp_path, {
            "src/repro/a.py": "def f():\n    return 1\n"})
        engine.program_for(project)
        assert not (tmp_path / "flow.json").exists()


class TestGraphExport:
    def test_dot_highlights_taint_path(self, tmp_path):
        project = make_project(tmp_path, LAUNDERED)
        program = engine.program_for(project)
        report = taint_report(program, project)
        dot = to_dot(program, report)
        assert dot.startswith("digraph")
        assert '"repro.fleet.invariants.fleet_digest" [shape=box' in dot
        assert ('"repro.util_a.stamp_a" -> "repro.util_b.stamp_b" '
                '[color=red, penwidth=2.0];') in dot

    def test_json_doc_is_deterministic_and_structured(self, tmp_path):
        project = make_project(tmp_path, LAUNDERED)
        program = engine.program_for(project)
        report = taint_report(program, project)
        doc_a = to_json_doc(program, report)
        doc_b = to_json_doc(program, report)
        assert doc_a == doc_b
        import json
        doc = json.loads(doc_a)
        assert doc["version"] == 1
        (path,) = doc["taint_paths"]
        assert path["rule"] == "DET101"
        assert path["chain"] == ["repro.fleet.invariants.fleet_digest",
                                 "repro.util_a.stamp_a",
                                 "repro.util_b.stamp_b"]
        tainted = {n["id"] for n in doc["nodes"] if n["tainted"]}
        assert "repro.util_a.stamp_a" in tainted


class TestSummaries:
    def test_summary_round_trips_through_json(self, tmp_path):
        import json
        project = make_project(tmp_path, LAUNDERED)
        sf = project.file("src/repro/util_b.py")
        summary = summarize_source(sf, "sha")
        restored = type(summary).from_dict(
            json.loads(json.dumps(summary.to_dict())))
        assert restored.to_dict() == summary.to_dict()

    def test_program_from_restored_summaries_matches(self, tmp_path):
        import json
        project = make_project(tmp_path, LAUNDERED)
        raw = {sf.rel: summarize_source(sf, "sha") for sf in project.files}
        restored = {
            rel: type(s).from_dict(json.loads(json.dumps(s.to_dict())))
            for rel, s in raw.items()
        }
        assert to_json_doc(Program(restored)) == to_json_doc(Program(raw))
