"""Scalar <-> vectorized serving-engine equivalence (fast path, phase 2).

The batched decode window (:mod:`repro.serving.fastpath`) claims *bit
identity* with the scalar per-iteration loop: same event stream, same
timestamps, same RNG draw order.  These tests run the nastiest scheduler
paths — chunked-prefill head-of-line blocking, preemption storms on tiny
KV pools, fault-kill requeues, starvation resolution, EOS sampling — in
both modes and assert the exact digests match:

* ``run_digest`` hashes every event float via ``float.hex`` plus every
  per-request outcome — one differing bit anywhere fails;
* ``fleet_digest`` does the same for the multi-replica simulator, whose
  ``Replica.advance_to`` is the horizon-bounded window consumer.

The mode toggle (``REPRO_NO_VECTORIZE_ENGINE``) is read once at engine
construction, so the helpers set the environment *before* building the
engine and restore it after.  The step cache is cleared between modes so
each path prices its steps from scratch (shared memo entries are
bit-identical by construction, but a cold cache makes the comparison
end-to-end).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.invariants import run_digest
from repro.hardware.gpus import H100_SXM
from repro.models.zoo import get_model
from repro.perfmodel import stepcache
from repro.perfmodel.inference import InferencePerfModel
from repro.serving.engine import ServingEngine
from repro.serving.request import Request, SamplingParams
from repro.serving.scheduler import SchedulerConfig

_settings = settings(max_examples=15, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])

_MODELS = ("OLMoE-1B-7B", "Mixtral-8x7B", "DeepSeek-V2-Lite")

_PERF_MODELS: dict[str, InferencePerfModel] = {}


def _perf(model_name: str) -> InferencePerfModel:
    pm = _PERF_MODELS.get(model_name)
    if pm is None:
        pm = InferencePerfModel(get_model(model_name), H100_SXM)
        _PERF_MODELS[model_name] = pm
    return pm


class _engine_mode:
    """Set/clear ``REPRO_NO_VECTORIZE_ENGINE`` around engine construction."""

    def __init__(self, vectorize: bool) -> None:
        self.vectorize = vectorize

    def __enter__(self) -> None:
        self._saved = os.environ.get("REPRO_NO_VECTORIZE_ENGINE")
        if self.vectorize:
            os.environ.pop("REPRO_NO_VECTORIZE_ENGINE", None)
        else:
            os.environ["REPRO_NO_VECTORIZE_ENGINE"] = "1"

    def __exit__(self, *exc) -> None:
        if self._saved is None:
            os.environ.pop("REPRO_NO_VECTORIZE_ENGINE", None)
        else:
            os.environ["REPRO_NO_VECTORIZE_ENGINE"] = self._saved


def _serve(model_name: str, specs, vectorize: bool, *,
           config: SchedulerConfig | None = None,
           kv_pool_tokens: int = 32_768,
           rng_seed: int | None = None) -> str:
    """Run one workload in the given mode; return its exact run digest.

    ``specs`` is a list of ``(prompt, max_tokens, arrival)`` or
    ``(prompt, max_tokens, arrival, sampling_overrides)`` tuples.
    """
    stepcache.clear()
    with _engine_mode(vectorize):
        rng = np.random.default_rng(rng_seed) if rng_seed is not None else None
        engine = ServingEngine(_perf(model_name), scheduler_config=config,
                               kv_pool_tokens=kv_pool_tokens, rng=rng)
        assert (engine.fastpath is not None) == vectorize
        for rid, spec in enumerate(specs):
            prompt, out, arrival = spec[:3]
            overrides = spec[3] if len(spec) > 3 else {}
            engine.submit(Request(
                request_id=rid, prompt_tokens=prompt,
                sampling=SamplingParams(max_tokens=out, **overrides),
                arrival_time=arrival))
        result = engine.run()
    return run_digest(result)


def _both_modes_equal(model_name: str, specs, **kwargs) -> None:
    fast = _serve(model_name, specs, vectorize=True, **kwargs)
    scalar = _serve(model_name, specs, vectorize=False, **kwargs)
    assert fast == scalar


class TestDecodeWindowEquivalence:
    @given(st.sampled_from(_MODELS),
           st.lists(st.tuples(st.integers(1, 512), st.integers(1, 96),
                              st.floats(0.0, 0.2)),
                    min_size=1, max_size=12))
    @_settings
    def test_mixed_workload(self, model, specs):
        """Arbitrary prompt/output/arrival mixes: windows open and close
        around admissions and completions."""
        _both_modes_equal(model, specs)

    @given(st.sampled_from(_MODELS), st.integers(2, 8),
           st.integers(256, 1024), st.integers(64, 512))
    @_settings
    def test_chunked_prefill_head_of_line(self, model, n, long_prompt,
                                          chunk_size):
        """Chunked prefill: a long prompt drips through chunk-bounded
        iterations while later arrivals queue behind it — every chunk
        boundary forces the window shut."""
        config = SchedulerConfig(enable_chunked_prefill=True,
                                 chunk_size=chunk_size,
                                 max_num_batched_tokens=chunk_size)
        specs = [(long_prompt, 32, 0.0)]
        specs += [(64, 16, 0.001 * (i + 1)) for i in range(n - 1)]
        _both_modes_equal(model, specs, config=config)

    @given(st.sampled_from(_MODELS), st.integers(4, 10),
           st.integers(2048, 6144))
    @_settings
    def test_preemption_storm(self, model, n, pool):
        """A KV pool much smaller than demand: sequences are preempted and
        re-admitted constantly, so windows break on pool-dry and the
        preemption order must replay exactly."""
        specs = [(256, 64, 0.0005 * i) for i in range(n)]
        _both_modes_equal(model, specs, kv_pool_tokens=pool)

    @given(st.sampled_from(_MODELS), st.integers(1, 6), st.integers(0, 2**16))
    @_settings
    def test_eos_sampling_rng_order(self, model, n, seed):
        """EOS draws consume engine RNG once per token; the fast path must
        refuse windows for these requests so draw order is preserved."""
        specs = [(128, 64, 0.0, {"ignore_eos": False, "eos_probability": 0.05})
                 for _ in range(n)]
        specs += [(128, 48, 0.0)]
        _both_modes_equal(model, specs, rng_seed=seed)

    def test_decode_first_policy(self):
        config = SchedulerConfig(policy="decode_first")
        specs = [(200, 80, 0.002 * i) for i in range(6)]
        _both_modes_equal("OLMoE-1B-7B", specs, config=config)

    def test_prefix_caching_block_reuse(self):
        """Prefix-cache eviction pops LRU reusable blocks: the window's
        block-crossing pops must hit the allocator in scalar order."""
        def digest(vectorize):
            stepcache.clear()
            with _engine_mode(vectorize):
                engine = ServingEngine(_perf("OLMoE-1B-7B"),
                                       kv_pool_tokens=8192,
                                       enable_prefix_caching=True)
                for rid in range(8):
                    engine.submit(Request(
                        request_id=rid, prompt_tokens=256,
                        sampling=SamplingParams(max_tokens=64),
                        arrival_time=0.003 * rid))
                return run_digest(engine.run())

        assert digest(True) == digest(False)


class TestFaultAndFleetEquivalence:
    def _chaos_digest(self, vectorize: bool, **overrides) -> tuple[str, dict]:
        from repro.faults.harness import ChaosConfig, chaos_serving_run

        stepcache.clear()
        with _engine_mode(vectorize):
            params = dict(num_requests=12, input_tokens=128,
                          output_tokens=24, kv_pool_tokens=16_384,
                          fault_seed=7, fault_rate=3.0, horizon_s=2.0,
                          num_devices=4, ep=4, replicas=2)
            params.update(overrides)
            config = ChaosConfig(**params)
            run = chaos_serving_run(config)
        return run_digest(run.result), run.summary

    def test_fault_kill_requeue(self):
        """Armed injector: the fast path must defer to the scalar loop
        (faults advance on the scalar clock), and the full kill/requeue
        event stream must match bit for bit."""
        fast = self._chaos_digest(True)
        scalar = self._chaos_digest(False)
        assert fast == scalar

    def test_failfast_policy(self):
        fast = self._chaos_digest(True, policy="failfast", fault_seed=3)
        scalar = self._chaos_digest(False, policy="failfast", fault_seed=3)
        assert fast == scalar

    @pytest.mark.parametrize("policy",
                             ["round_robin", "least_kv", "prefix_affinity"])
    def test_fleet_digest_both_modes(self, policy):
        """The canonical fleet smoke scenario (diurnal trace, replica
        storm, autoscaler) replays to one digest in both modes —
        ``Replica.advance_to`` is the horizon-bounded window consumer."""
        from repro.fleet.harness import fleet_smoke_digest

        stepcache.clear()
        with _engine_mode(True):
            fast = fleet_smoke_digest(policy)
        stepcache.clear()
        with _engine_mode(False):
            scalar = fleet_smoke_digest(policy)
        assert fast == scalar


class TestFastPathMechanics:
    def test_env_escape_hatch_disables_fastpath(self):
        with _engine_mode(False):
            engine = ServingEngine(_perf("OLMoE-1B-7B"))
            assert engine.fastpath is None
            assert engine.advance_window() == 0

    def test_window_refuses_instrumented_engine(self):
        from repro.obs import Instrumentation

        with _engine_mode(True):
            engine = ServingEngine(_perf("OLMoE-1B-7B"),
                                   instrumentation=Instrumentation())
            engine.submit(Request(request_id=0, prompt_tokens=64,
                                  sampling=SamplingParams(max_tokens=32)))
            engine.step()  # prefill
            assert engine.advance_window() == 0

    def test_window_matches_scalar_steps_midstream(self):
        """Drive one engine with explicit windows and another purely with
        ``step()``; clocks and logs must stay equal at every boundary."""
        def build():
            engine = ServingEngine(_perf("OLMoE-1B-7B"))
            for rid in range(3):
                engine.submit(Request(
                    request_id=rid, prompt_tokens=96,
                    sampling=SamplingParams(max_tokens=40),
                    arrival_time=0.0))
            return engine

        stepcache.clear()
        with _engine_mode(True):
            windowed = build()
        with _engine_mode(False):
            scalar = build()
        while True:
            advanced = windowed.advance_window()
            if advanced == 0:
                more = windowed.step()
                advanced = 1 if more else 0
                if not more:
                    break
            for _ in range(advanced):
                scalar.step()
            assert windowed.clock == scalar.clock
            assert len(windowed.log.events) == len(scalar.log.events)
        assert run_digest(windowed.run()) == run_digest(scalar.run())


class TestResultAggregates:
    """S1 regression: the memoized ServingResult aggregates must equal a
    fresh scan for every zoo model (one pass, then served from cache)."""

    @pytest.mark.parametrize("model", _MODELS)
    def test_cached_aggregates_match_rescan(self, model):
        engine = ServingEngine(_perf(model), kv_pool_tokens=32_768)
        for rid in range(6):
            engine.submit(Request(
                request_id=rid, prompt_tokens=64 + 16 * rid,
                sampling=SamplingParams(max_tokens=8 + rid),
                arrival_time=0.001 * rid))
        res = engine.run()
        reqs = res.requests
        assert res.total_tokens == sum(
            r.prompt_tokens + r.generated_tokens for r in reqs)
        assert res.num_failed == sum(1 for r in reqs if r.is_failed)
        assert res.num_preemptions == sum(r.num_preemptions for r in reqs)
        assert res.num_fault_retries == sum(r.fault_retries for r in reqs)
        assert res.availability == \
            sum(1 for r in reqs if r.is_finished) / len(reqs)
        # second read is served from the memo and must not drift
        assert res.total_tokens == sum(
            r.prompt_tokens + r.generated_tokens for r in reqs)

    def test_request_index_lookup(self):
        engine = ServingEngine(_perf("OLMoE-1B-7B"))
        for rid in (5, 9, 2):
            engine.submit(Request(request_id=rid, prompt_tokens=32,
                                  sampling=SamplingParams(max_tokens=4)))
        res = engine.run()
        assert res.request(9).request_id == 9
        assert res.request(2).request_id == 2
        with pytest.raises(KeyError):
            res.request(404)

    def test_token_times_per_request(self):
        engine = ServingEngine(_perf("OLMoE-1B-7B"))
        engine.submit(Request(request_id=0, prompt_tokens=64,
                              sampling=SamplingParams(max_tokens=6)))
        res = engine.run()
        times = res.token_times(0)
        assert len(times) == 6
        assert times == sorted(times)
        assert times[0] == res.request(0).first_token_time
