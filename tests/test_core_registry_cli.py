"""Tests for the registry, report rendering, and CLI."""

from __future__ import annotations

import pytest

from repro.core.cli import main
from repro.core.experiment import ExperimentResult
from repro.core.registry import get_experiment, list_experiments, run_experiment
from repro.core.report import render_markdown, render_summary, write_report
from repro.core.results import ResultTable


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        ids = list_experiments()
        expected = {"table1", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7",
                    "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
                    "fig14", "fig15", "fig16", "fig17", "fig18"}
        assert expected <= set(ids)

    def test_ablations_registered(self):
        ids = set(list_experiments())
        assert {"ablation_coverage", "ablation_efficiency", "ablation_engine",
                "ablation_ep_imbalance"} <= ids

    def test_figures_sorted_numerically(self):
        ids = [i for i in list_experiments() if i.startswith("fig")]
        nums = [int(i[3:].split("_")[0]) for i in ids]
        assert nums == sorted(nums)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="known"):
            get_experiment("fig99")

    def test_run_experiment_stamps_runtime(self):
        res = run_experiment("table1")
        assert res.runtime_s > 0
        assert res.exp_id == "table1"


@pytest.fixture
def demo_result():
    res = ExperimentResult("demo", "Demo experiment", "the paper claims X")
    t = ResultTable("numbers", ("a", "b"))
    t.add(a=1, b=2.5)
    res.tables.append(t)
    res.observe("we measured Y")
    res.runtime_s = 0.5
    return res


class TestReports:
    def test_render_markdown(self, demo_result):
        md = render_markdown(demo_result)
        assert "## demo: Demo experiment" in md
        assert "the paper claims X" in md
        assert "we measured Y" in md
        assert "| a | b |" in md

    def test_render_summary(self, demo_result):
        s = render_summary([demo_result])
        assert s.startswith("# MoE-Inference-Bench")
        assert "- [demo](#demo)" in s

    def test_write_report(self, demo_result, tmp_path):
        path = write_report(demo_result, tmp_path)
        assert path.read_text().startswith("## demo")
        assert (tmp_path / "demo_numbers.csv").exists()


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "table1" in out

    def test_run_to_stdout(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "architectures" in capsys.readouterr().out

    def test_run_to_dir(self, tmp_path, capsys):
        assert main(["run", "fig1", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig1.md").exists()

    def test_run_unknown_fails(self):
        with pytest.raises(KeyError):
            main(["run", "fig99"])


class TestChartsInReports:
    def test_charts_render_as_code_blocks(self, demo_result):
        demo_result.add_chart("line1\nline2")
        md = render_markdown(demo_result)
        assert "```\nline1\nline2\n```" in md

    def test_experiment_charts_present(self):
        res = run_experiment("fig13")
        assert len(res.charts) == 2
        assert all("tok/s" in c for c in res.charts)


class TestSummaryCommand:
    def test_summary_to_file(self, tmp_path, monkeypatch):
        import repro.core.cli as cli

        monkeypatch.setattr(cli, "list_experiments", lambda: ["table1", "fig1"])
        out = tmp_path / "report.md"
        assert main(["summary", "--out", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("# MoE-Inference-Bench")
        assert "## table1" in text and "## fig1" in text
