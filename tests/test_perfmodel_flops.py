"""Tests for repro.perfmodel.flops (component cost accounting)."""

from __future__ import annotations

import pytest

from repro.models.zoo import DEEPSEEK_V2_LITE, MIXTRAL_8X7B, OLMOE_1B_7B
from repro.optim.quantization import FP8_CONFIG, FP16_CONFIG
from repro.perfmodel.flops import (
    attention_core_cost,
    dense_ffn_cost,
    embedding_cost,
    lm_head_cost,
    qkvo_cost,
    router_cost,
    routed_experts_cost,
    shared_expert_cost,
)


class TestQKVO:
    def test_flops_are_2m_params(self):
        c = qkvo_cost(MIXTRAL_8X7B, 10, FP16_CONFIG)
        # Mixtral attention ≈ 41.9M params/layer
        assert c.flops == pytest.approx(2 * 10 * 41.9e6, rel=0.01)

    def test_weight_bytes_scale_with_dtype(self):
        f16 = qkvo_cost(MIXTRAL_8X7B, 1, FP16_CONFIG)
        f8 = qkvo_cost(MIXTRAL_8X7B, 1, FP8_CONFIG)
        assert f8.weight_bytes == pytest.approx(f16.weight_bytes / 2)


class TestAttentionCore:
    def test_kv_read_dominates_decode(self):
        c = attention_core_cost(MIXTRAL_8X7B, m=1, batch=1, kv_len=4096,
                                quant=FP16_CONFIG)
        expected_kv = 4096 * 2 * 8 * 128 * 2  # kv_len * entries * bytes
        assert c.act_bytes > expected_kv
        assert c.weight_bytes == 0

    def test_native_mla_reads_less_kv_than_gqa_equivalent(self):
        mla = attention_core_cost(DEEPSEEK_V2_LITE, 1, 1, 2048, FP16_CONFIG,
                                  mla_native=True)
        gqa = attention_core_cost(OLMOE_1B_7B, 1, 1, 2048, FP16_CONFIG)
        # DeepSeek's compressed latent (576/token) vs OLMoE MHA (4096/token)
        assert mla.bytes < gqa.bytes

    def test_materialized_mla_reads_more_than_native(self):
        native = attention_core_cost(DEEPSEEK_V2_LITE, 1, 1, 2048, FP16_CONFIG,
                                     mla_native=True)
        mat = attention_core_cost(DEEPSEEK_V2_LITE, 1, 1, 2048, FP16_CONFIG)
        assert mat.bytes > 3 * native.bytes

    def test_attended_len_scales_flops_only(self):
        full = attention_core_cost(MIXTRAL_8X7B, 128, 1, 128, FP16_CONFIG)
        half = attention_core_cost(MIXTRAL_8X7B, 128, 1, 128, FP16_CONFIG,
                                   attended_len=64)
        assert half.flops == pytest.approx(full.flops / 2)
        assert half.bytes == full.bytes


class TestRoutedExperts:
    def test_flops_scale_with_top_k(self):
        c1 = routed_experts_cost(MIXTRAL_8X7B, 16, FP16_CONFIG, top_k=1)
        c2 = routed_experts_cost(MIXTRAL_8X7B, 16, FP16_CONFIG, top_k=2)
        assert c2.flops == pytest.approx(2 * c1.flops)

    def test_weight_bytes_follow_coverage(self):
        """One decode token streams only top_k experts; a large batch
        streams all of them."""
        one = routed_experts_cost(MIXTRAL_8X7B, 1, FP16_CONFIG)
        big = routed_experts_cost(MIXTRAL_8X7B, 10_000, FP16_CONFIG)
        per_expert = 3 * 4096 * 14336 * 2
        assert one.weight_bytes == pytest.approx(2 * per_expert, rel=0.01)
        assert big.weight_bytes == pytest.approx(8 * per_expert, rel=0.01)

    def test_unfused_penalties(self):
        fused = routed_experts_cost(MIXTRAL_8X7B, 64, FP16_CONFIG, fused=True)
        naive = routed_experts_cost(MIXTRAL_8X7B, 64, FP16_CONFIG, fused=False)
        assert naive.launches > fused.launches
        assert naive.act_bytes > fused.act_bytes
        assert naive.weight_bytes > fused.weight_bytes

    def test_resident_override(self):
        c = routed_experts_cost(MIXTRAL_8X7B, 1000, FP16_CONFIG,
                                num_experts_resident=2, top_k=2)
        per_expert = 3 * 4096 * 14336 * 2
        assert c.weight_bytes == pytest.approx(2 * per_expert, rel=0.01)


class TestOtherComponents:
    def test_router_cost_shape(self):
        c = router_cost(MIXTRAL_8X7B, 4, FP16_CONFIG)
        assert c.flops == 2 * 4 * 4096 * 8

    def test_shared_expert_zero_without_shared(self):
        c = shared_expert_cost(MIXTRAL_8X7B, 4, FP16_CONFIG)
        assert c.flops == 0 and c.bytes == 0 and c.launches == 0

    def test_shared_expert_nonzero_for_deepseek(self):
        c = shared_expert_cost(DEEPSEEK_V2_LITE, 4, FP16_CONFIG)
        assert c.flops == 2 * 4 * 3 * 2048 * (2 * 1408)

    def test_dense_ffn_zero_for_pure_moe(self):
        assert dense_ffn_cost(MIXTRAL_8X7B, 4, FP16_CONFIG).flops == 0

    def test_dense_ffn_for_deepseek_layer0(self):
        c = dense_ffn_cost(DEEPSEEK_V2_LITE, 4, FP16_CONFIG)
        assert c.flops == 2 * 4 * 3 * 2048 * 10944

    def test_lm_head_scales_with_positions(self):
        c1 = lm_head_cost(MIXTRAL_8X7B, 1, FP16_CONFIG)
        c64 = lm_head_cost(MIXTRAL_8X7B, 64, FP16_CONFIG)
        assert c64.flops == 64 * c1.flops
        assert c64.weight_bytes == c1.weight_bytes

    def test_embedding_memory_only(self):
        c = embedding_cost(MIXTRAL_8X7B, 16, FP16_CONFIG)
        assert c.flops == 0 and c.act_bytes > 0
