"""Determinism regression: same inputs must produce bit-identical outputs.

Two layers, matching the two reproducibility gates the repo ships:

* **experiment fingerprints** — running a registered experiment twice in
  one process must yield identical sim metrics, table digests, and
  structure (wall metrics are excluded: they measure the machine, not
  the model, and legitimately vary between runs).
* **chaos digests** — a fault-injected serving run replayed with the
  same workload seed and fault seed must be bit-identical down to the
  event log (``run_digest`` hashes every float via ``float.hex``).

These are the in-tree counterparts of ``repro bench --check`` and
``repro chaos --smoke``: cross-*run* drift is caught by the recorded
BENCH baselines; cross-*call* nondeterminism (unordered dicts, shared
RNG state, time-dependent code) is caught here.
"""

from __future__ import annotations

import pytest

from repro.core.registry import run_experiment
from repro.obs.fingerprint import fingerprint_result

# One figure-family experiment and two extension experiments — enough to
# cover the perf-model, serving-sim, and fleet-sim paths (ext_fleet_policy
# is the cheapest of the fleet family).
EXPERIMENTS = ("fig5", "ext_resilience", "ext_fleet_policy")


def _gated_view(result) -> dict:
    """Fingerprint dict minus wall-clock metrics (machine-dependent)."""
    fp = fingerprint_result(result).to_dict()
    fp.pop("wall", None)
    return fp


@pytest.mark.parametrize("exp_id", EXPERIMENTS)
def test_experiment_fingerprint_is_call_stable(exp_id):
    first = _gated_view(run_experiment(exp_id))
    second = _gated_view(run_experiment(exp_id))
    assert first == second


@pytest.mark.parametrize("exp_id", EXPERIMENTS)
def test_experiment_fingerprint_has_gateable_content(exp_id):
    """An empty fingerprint would make the identity test vacuous."""
    fp = _gated_view(run_experiment(exp_id))
    assert fp["sim"]
    assert fp["digests"]
    assert all(info["rows"] > 0 for info in fp["structure"].values())


class TestChaosReplay:
    def _run(self):
        from repro.faults.harness import ChaosConfig, chaos_serving_run

        config = ChaosConfig(num_requests=8, input_tokens=128,
                             output_tokens=16, kv_pool_tokens=16_384,
                             fault_seed=7, fault_rate=3.0, horizon_s=2.0,
                             num_devices=4, ep=4, replicas=2)
        return chaos_serving_run(config)

    def test_same_seed_chaos_run_is_bit_identical(self):
        from repro.faults.invariants import run_digest

        first = self._run()
        second = self._run()
        assert first.schedule.events == second.schedule.events
        assert run_digest(first.result) == run_digest(second.result)
        assert first.summary == second.summary


class TestFleetReplay:
    """The fleet counterpart of the chaos layer: the canonical smoke
    scenario (replica storm + autoscaler armed) must replay to the same
    ``fleet_digest`` in-process and across worker processes — the
    in-tree twin of ``repro fleet --smoke``."""

    def test_killed_replica_storm_replays_bit_identically(self):
        from repro.fleet.harness import fleet_smoke_digest, fleet_smoke_run

        assert fleet_smoke_run().num_kills >= 1, \
            "the smoke storm must actually kill a replica"
        assert fleet_smoke_digest() == fleet_smoke_digest()

    def test_fleet_digest_identical_across_processes(self):
        from concurrent.futures import ProcessPoolExecutor

        from repro.fleet.harness import fleet_smoke_digest
        from repro.runner import _pool_context

        parent = fleet_smoke_digest("prefix_affinity")
        with ProcessPoolExecutor(max_workers=2,
                                 mp_context=_pool_context()) as pool:
            workers = [pool.submit(fleet_smoke_digest,
                                   "prefix_affinity").result()
                       for _ in range(2)]
        assert workers == [parent, parent]
