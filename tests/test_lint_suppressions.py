"""Stale-suppression rule (SUP001) and span-aware directives."""

import pathlib
import textwrap

from repro.lint.core import LintProject, get_rule, lint_source, run_lint

REPO = pathlib.Path(__file__).resolve().parents[1]


def make_project(tmp_path, files: dict[str, str]) -> LintProject:
    for rel, text in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(text).lstrip("\n"))
    return LintProject(tmp_path)


def _sup_run(tmp_path, files, rule_ids=("DET001", "SUP001")):
    project = make_project(tmp_path, files)
    return run_lint(tmp_path, rules=[get_rule(r) for r in rule_ids],
                    project=project)


class TestMultiLineDirectives:
    def test_directive_on_closing_line_of_wrapped_call(self):
        # the statement spans two lines; the directive sits on the second
        src = ("import time\n"
               "t = time.time(\n"
               ")  # simlint: disable=DET001\n")
        assert lint_source(src, get_rule("DET001")) == []

    def test_directive_on_first_line_still_works(self):
        src = ("import time\n"
               "t = time.time(  # simlint: disable=DET001\n"
               ")\n")
        assert lint_source(src, get_rule("DET001")) == []

    def test_directive_outside_the_span_does_not_suppress(self):
        src = ("import time\n"
               "t = time.time()\n"
               "u = 1  # simlint: disable=DET001\n")
        assert [v.rule for v in lint_source(src, get_rule("DET001"))] \
            == ["DET001"]


class TestStaleSuppression:
    def test_used_directive_is_not_flagged(self, tmp_path):
        vs = _sup_run(tmp_path, {
            "src/repro/a.py": """
                import time
                t = time.time()  # simlint: disable=DET001
            """})
        assert vs == []

    def test_stale_directive_is_flagged(self, tmp_path):
        vs = _sup_run(tmp_path, {
            "src/repro/a.py": """
                x = 1  # simlint: disable=DET001
            """})
        assert [v.rule for v in vs] == ["SUP001"]
        assert "stale" in vs[0].message and "DET001" in vs[0].message

    def test_used_directive_on_multiline_statement(self, tmp_path):
        # the suppressed violation spans lines 2-3; the directive on the
        # closing line counts as used, not stale
        vs = _sup_run(tmp_path, {
            "src/repro/a.py": """
                import time
                t = time.time(
                )  # simlint: disable=DET001
            """})
        assert vs == []

    def test_unknown_rule_id_is_flagged(self, tmp_path):
        vs = _sup_run(tmp_path, {
            "src/repro/a.py": """
                x = 1  # simlint: disable=ZZZ999
            """})
        assert [v.rule for v in vs] == ["SUP001"]
        assert "unknown rule" in vs[0].message

    def test_out_of_scope_directive_not_judged_in_subset_run(self, tmp_path):
        # UNIT001 did not run: its directive is out of scope, not stale
        vs = _sup_run(tmp_path, {
            "src/repro/a.py": """
                x = 1  # simlint: disable=UNIT001
            """})
        assert vs == []

    def test_stale_file_level_directive(self, tmp_path):
        vs = _sup_run(tmp_path, {
            "src/repro/a.py": """
                # simlint: disable-file=DET001
                x = 1
            """})
        assert [v.rule for v in vs] == ["SUP001"]
        assert "disable-file" in vs[0].message

    def test_used_file_level_directive(self, tmp_path):
        vs = _sup_run(tmp_path, {
            "src/repro/a.py": """
                # simlint: disable-file=DET001
                import time
                t = time.time()
            """})
        assert vs == []

    def test_sup001_can_itself_be_suppressed(self, tmp_path):
        vs = _sup_run(tmp_path, {
            "src/repro/a.py": """
                x = 1  # simlint: disable=DET001, SUP001
            """})
        assert vs == []

    def test_repo_has_no_stale_suppressions(self):
        assert run_lint(REPO, rules=[get_rule("SUP001")]) == []
