"""CLI tests for the ``repro chaos`` subcommand."""

from __future__ import annotations

import pytest

from repro.core.cli import main

# Small workload so each CLI run stays well under a second.
FAST = ["--requests", "6", "--input-tokens", "128", "--output-tokens", "16"]


def test_chaos_runs_and_reports(capsys):
    assert main(["chaos", *FAST, "--fault-seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "chaos run (fault seed 1" in out
    assert "availability" in out
    assert "final health" in out


def test_chaos_show_schedule_prints_events(capsys):
    assert main(["chaos", *FAST, "--fault-seed", "1",
                 "--show-schedule"]) == 0
    out = capsys.readouterr().out
    assert "seed 1" in out
    assert "t=" in out


def test_chaos_smoke_gate_passes(capsys):
    assert main(["chaos", *FAST, "--fault-seed", "2", "--smoke"]) == 0
    out = capsys.readouterr().out
    assert "same-seed replay bit-identical" in out
    assert "invariants held" in out


def test_chaos_failfast_policy_reports_failures(capsys):
    # A permanent-ish fault storm under failfast: some requests fail,
    # but the run itself (and its invariants) must still complete.
    assert main(["chaos", *FAST, "--fault-seed", "3", "--fault-rate", "6.0",
                 "--policy", "failfast", "--no-degrade"]) == 0
    out = capsys.readouterr().out
    assert "policy failfast" in out


def test_chaos_rejects_unknown_policy():
    with pytest.raises(SystemExit):
        main(["chaos", "--policy", "shrug"])
