"""Tests for repro.serving.scheduler (continuous batching)."""

from __future__ import annotations

import pytest

from repro.serving.kv_cache import PagedKVCache
from repro.serving.request import Request, RequestState, SamplingParams
from repro.serving.scheduler import Scheduler, SchedulerConfig


def make_request(rid: int, prompt: int = 32, out: int = 16) -> Request:
    return Request(request_id=rid, prompt_tokens=prompt,
                   sampling=SamplingParams(max_tokens=out))


@pytest.fixture
def sched():
    kv = PagedKVCache(num_blocks=64, block_size=16)
    return Scheduler(SchedulerConfig(max_num_seqs=8, max_num_batched_tokens=128), kv)


class TestPrefillScheduling:
    def test_prefill_first(self, sched):
        sched.add_request(make_request(1))
        batch = sched.schedule()
        assert batch.phase == "prefill"
        assert batch.num_tokens == 32
        assert batch.requests[0].state is RequestState.RUNNING

    def test_prefill_batches_up_to_token_budget(self, sched):
        for i in range(6):
            sched.add_request(make_request(i, prompt=48))
        batch = sched.schedule()
        # 48*2=96 <= 128 but adding a third (144) exceeds the budget
        assert batch.batch_size == 2

    def test_first_oversized_prompt_still_scheduled(self, sched):
        sched.add_request(make_request(1, prompt=500))
        batch = sched.schedule()
        assert batch.batch_size == 1
        assert batch.num_tokens == 500

    def test_max_num_seqs_cap(self):
        kv = PagedKVCache(num_blocks=256, block_size=16)
        sched = Scheduler(SchedulerConfig(max_num_seqs=3,
                                          max_num_batched_tokens=10_000), kv)
        for i in range(5):
            sched.add_request(make_request(i, prompt=8))
        batch = sched.schedule()
        assert batch.batch_size == 3

    def test_admission_blocked_by_kv_pressure(self):
        kv = PagedKVCache(num_blocks=4, block_size=16)
        sched = Scheduler(SchedulerConfig(), kv)
        sched.add_request(make_request(1, prompt=48, out=16))  # 4 blocks
        sched.add_request(make_request(2, prompt=48, out=16))
        batch = sched.schedule()
        assert batch.batch_size == 1  # second cannot be admitted

    def test_on_prefill_done_moves_to_running(self, sched):
        sched.add_request(make_request(1))
        batch = sched.schedule()
        sched.on_prefill_done(batch)
        assert sched.num_running == 1
        assert not batch.requests[0].is_prefill_pending


class TestDecodeScheduling:
    def _admit(self, sched, n=2):
        for i in range(n):
            sched.add_request(make_request(i))
        batch = sched.schedule()
        sched.on_prefill_done(batch)
        return batch.requests

    def test_decode_includes_all_running(self, sched):
        reqs = self._admit(sched, 2)
        batch = sched.schedule()
        assert batch.phase == "decode"
        assert batch.batch_size == 2
        assert batch.num_tokens == 2

    def test_decode_appends_kv_slot(self, sched):
        (req,) = self._admit(sched, 1)
        before = sched.kv.num_tokens(req.request_id)
        sched.schedule()
        assert sched.kv.num_tokens(req.request_id) == before + 1

    def test_finish_releases_kv(self, sched):
        reqs = self._admit(sched, 2)
        batch = sched.schedule()
        sched.on_decode_done(batch, [reqs[0]])
        assert reqs[0].state is RequestState.FINISHED
        assert not sched.kv.has_sequence(reqs[0].request_id)
        assert sched.num_running == 1

    def test_waiting_requests_keep_prefill_priority(self, sched):
        self._admit(sched, 1)
        sched.add_request(make_request(9))
        batch = sched.schedule()
        assert batch.phase == "prefill"


class TestPreemption:
    def test_preempts_latest_on_pressure(self):
        kv = PagedKVCache(num_blocks=4, block_size=4)
        sched = Scheduler(SchedulerConfig(watermark_blocks=0), kv)
        a = make_request(1, prompt=8, out=8)   # 2 blocks full
        b = make_request(2, prompt=8, out=8)
        sched.add_request(a)
        sched.add_request(b)
        batch = sched.schedule()
        sched.on_prefill_done(batch)
        assert sched.num_running == 2
        # next decode needs 2 new blocks but the pool is full -> preempt b
        decode = sched.schedule()
        assert decode.phase == "decode"
        assert b in decode.preempted
        assert b.state is RequestState.PREEMPTED
        assert a in decode.requests
        assert sched.waiting[0] is b

    def test_preempted_request_recomputed_later(self):
        kv = PagedKVCache(num_blocks=4, block_size=4)
        sched = Scheduler(SchedulerConfig(watermark_blocks=0), kv)
        a = make_request(1, prompt=8, out=8)
        b = make_request(2, prompt=8, out=8)
        sched.add_request(a)
        sched.add_request(b)
        sched.on_prefill_done(sched.schedule())
        sched.schedule()  # preempts b
        # finish a, releasing space
        sched.on_decode_done(
            type(sched.schedule())(phase="decode", requests=[a], num_tokens=1),
            [a],
        )
        batch = sched.schedule()
        assert batch.phase == "prefill"
        assert batch.requests == [b]


class TestChunkedPrefill:
    def test_chunks_limit_tokens(self):
        kv = PagedKVCache(num_blocks=64, block_size=16)
        sched = Scheduler(
            SchedulerConfig(enable_chunked_prefill=True, chunk_size=64), kv
        )
        req = make_request(1, prompt=200)
        sched.add_request(req)
        batch = sched.schedule()
        assert batch.num_tokens == 64
        sched.on_prefill_done(batch)
        assert req.kv_tokens == 64
        assert req.is_prefill_pending
        # continues at the queue front
        batch2 = sched.schedule()
        assert batch2.requests == [req]
        assert batch2.num_tokens == 64

    def test_chunked_prefill_completes(self):
        kv = PagedKVCache(num_blocks=64, block_size=16)
        sched = Scheduler(
            SchedulerConfig(enable_chunked_prefill=True, chunk_size=64), kv
        )
        req = make_request(1, prompt=150)
        sched.add_request(req)
        for _ in range(3):  # 64 + 64 + 22
            sched.on_prefill_done(sched.schedule())
        assert not req.is_prefill_pending
        assert sched.num_running == 1


class TestValidation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SchedulerConfig(max_num_seqs=0)
        with pytest.raises(ValueError):
            SchedulerConfig(max_num_batched_tokens=0)
        with pytest.raises(ValueError):
            SchedulerConfig(watermark_blocks=-1)

    def test_add_finished_request_rejected(self, sched):
        req = make_request(1)
        req.state = RequestState.FINISHED
        with pytest.raises(ValueError):
            sched.add_request(req)
