"""Tests for the scheduler's prefill-first vs decode-first policies."""

from __future__ import annotations

import pytest

from repro.hardware.gpus import H100_SXM
from repro.models.zoo import OLMOE_1B_7B
from repro.perfmodel.inference import InferencePerfModel
from repro.serving.engine import ServingEngine
from repro.serving.request import Request, SamplingParams
from repro.serving.scheduler import SchedulerConfig


def _run(policy: str):
    pm = InferencePerfModel(OLMOE_1B_7B, H100_SXM)
    engine = ServingEngine(
        pm,
        scheduler_config=SchedulerConfig(policy=policy),
        kv_pool_tokens=65536,
    )
    # one long-running request, then a latecomer mid-generation
    engine.submit(Request(request_id=0, prompt_tokens=256,
                          sampling=SamplingParams(max_tokens=256)))
    engine.submit(Request(request_id=1, prompt_tokens=256,
                          sampling=SamplingParams(max_tokens=16),
                          arrival_time=0.2))
    return engine.run()


class TestPolicies:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="policy"):
            SchedulerConfig(policy="fifo")

    def test_prefill_first_admits_latecomer_quickly(self):
        res = _run("prefill_first")
        late = next(r for r in res.requests if r.request_id == 1)
        assert late.ttft < 0.3  # admitted at the next iteration boundary

    def test_decode_first_delays_latecomer(self):
        fast = _run("prefill_first")
        slow = _run("decode_first")
        late_fast = next(r for r in fast.requests if r.request_id == 1).ttft
        late_slow = next(r for r in slow.requests if r.request_id == 1).ttft
        assert late_slow > 2 * late_fast

    def test_decode_first_finishes_first_request_sooner(self):
        """The running sequence never yields to the latecomer's prefill."""
        fast = _run("prefill_first")
        slow = _run("decode_first")
        first_fast = next(r for r in fast.requests if r.request_id == 0)
        first_slow = next(r for r in slow.requests if r.request_id == 0)
        assert first_slow.e2e_latency < first_fast.e2e_latency

    def test_both_policies_complete_everything(self):
        for policy in ("prefill_first", "decode_first"):
            res = _run(policy)
            assert all(r.is_finished for r in res.requests)
            assert all(r.generated_tokens == r.sampling.max_tokens
                       for r in res.requests)
