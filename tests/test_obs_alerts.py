"""Tests for repro.obs.alerts — rules, monitor, flight recorder."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.hardware.gpus import H100_SXM
from repro.models.zoo import get_model
from repro.obs.alerts import (
    AlertMonitor,
    EmptyPercentileRule,
    ExpertImbalanceRule,
    FlightRecorder,
    KvHighWaterRule,
    PreemptionStormRule,
    default_rules,
)
from repro.obs.instrument import Instrumentation
from repro.perfmodel.inference import InferencePerfModel
from repro.serving.engine import ServingEngine, ServingResult
from repro.serving.events import Event, EventType
from repro.workloads.generator import FixedShapeWorkload

MODEL = "OLMoE-1B-7B"


def _engine(alerts=None, with_routing=False, kv_pool_tokens=None):
    model = get_model(MODEL)
    obs = Instrumentation.on(model=model if with_routing else None,
                             alerts=alerts)
    pm = InferencePerfModel(model, H100_SXM, instrumentation=obs)
    return ServingEngine(pm, instrumentation=obs,
                         kv_pool_tokens=kv_pool_tokens), obs


def _run(engine, num_requests=8, input_tokens=128, output_tokens=16):
    for req in FixedShapeWorkload(batch_size=num_requests,
                                  input_tokens=input_tokens,
                                  output_tokens=output_tokens).requests():
        engine.submit(req)
    return engine.run()


class TestRules:
    def test_quiet_on_healthy_run(self):
        monitor = AlertMonitor()  # default rules, default thresholds
        engine, _ = _engine(alerts=monitor, with_routing=True)
        _run(engine)
        assert monitor.fired == []

    def test_kv_high_water_fires(self):
        monitor = AlertMonitor(rules=[KvHighWaterRule(threshold=0.5)])
        engine, _ = _engine(alerts=monitor, kv_pool_tokens=4096)
        _run(engine, num_requests=12, input_tokens=256, output_tokens=32)
        assert [a.rule for a in monitor.fired] == ["kv_high_water"]
        alert = monitor.fired[0]
        assert alert.context["utilization"] >= 0.5
        assert alert.time > 0

    def test_rules_fire_at_most_once(self):
        monitor = AlertMonitor(rules=[KvHighWaterRule(threshold=0.1)])
        engine, _ = _engine(alerts=monitor, kv_pool_tokens=4096)
        _run(engine, num_requests=12, input_tokens=256, output_tokens=32)
        assert len(monitor.fired) == 1

    def test_expert_imbalance_fires_on_synthetic_skew(self, tmp_path):
        monitor = AlertMonitor(rules=[ExpertImbalanceRule()],
                               recorder=FlightRecorder(tmp_path, last_n=16))
        engine, obs = _engine(alerts=monitor, with_routing=True)
        # synthetic hot expert: all the window's load on expert 0
        skew = np.zeros(obs.routing.telemetry.num_experts, dtype=np.int64)
        skew[0] = 1000
        for _ in range(64):
            obs.routing.telemetry.record_counts(0, skew)
        _run(engine, num_requests=2, output_tokens=4)
        assert [a.rule for a in monitor.fired] == ["expert_imbalance"]
        bundle = monitor.bundles[0]
        assert bundle.name.startswith("expert_imbalance-t")
        assert (bundle / "routing.json").exists()
        alert = json.loads((bundle / "alert.json").read_text())
        assert alert["context"]["hottest_experts"][0] == 0

    def test_preemption_storm_rule(self):
        engine, _ = _engine()
        rule = PreemptionStormRule(max_events=3, window_s=1.0)
        for t in (0.1, 0.2, 0.3):
            engine.log.record(Event(t, EventType.PREEMPTION, (0,)))
        engine.clock = 0.3
        assert rule.check(engine) is None  # 3 events is not > 3 yet
        engine.log.record(Event(0.4, EventType.PREEMPTION, (0,)))
        engine.clock = 0.4
        alert = rule.check(engine)
        assert alert is not None
        assert alert.context["recent_preemptions"] == 4
        # events older than the window stop counting
        engine.clock = 5.0
        assert rule.check(engine) is None

    def test_empty_percentile_rule(self):
        engine, _ = _engine()
        rule = EmptyPercentileRule()
        # iterations happened but nothing ever finished
        engine.log.record(Event(0.1, EventType.DECODE, (0,), num_tokens=1,
                                duration_s=0.1))
        result = ServingResult(requests=[], makespan=0.1, log=engine.log)
        alert = rule.check_end(engine, result)
        assert alert is not None and "percentile" in alert.message

    def test_empty_percentile_quiet_when_samples_exist(self):
        monitor = AlertMonitor(rules=[EmptyPercentileRule()])
        engine, _ = _engine(alerts=monitor)
        _run(engine, num_requests=2, output_tokens=2)
        assert monitor.fired == []

    def test_default_rules_cover_the_seven_pathologies(self):
        assert {r.name for r in default_rules()} == {
            "expert_imbalance", "preemption_storm", "kv_high_water",
            "empty_percentiles", "fault_storm", "unrecoverable_loss",
            "device_saturation",
        }


class TestFlightRecorder:
    def test_bundle_contents(self, tmp_path):
        monitor = AlertMonitor(
            rules=[KvHighWaterRule(threshold=0.3)],
            recorder=FlightRecorder(tmp_path, last_n=8),
        )
        engine, obs = _engine(alerts=monitor, kv_pool_tokens=4096)
        _run(engine, num_requests=12, input_tokens=256, output_tokens=32)
        assert len(monitor.bundles) == 1
        bundle = monitor.bundles[0]
        names = sorted(p.name for p in bundle.iterdir())
        assert names == ["alert.json", "events.json", "metrics.json",
                         "trace_tail.json"]
        events = json.loads((bundle / "events.json").read_text())
        assert 0 < len(events) <= 8
        assert {"time", "type", "request_ids"} <= set(events[0])
        tail = json.loads((bundle / "trace_tail.json").read_text())
        assert 0 < len(tail) <= 8
        metrics = json.loads((bundle / "metrics.json").read_text())
        assert any(m["name"] == "engine_iterations_total"
                   for m in metrics["metrics"])

    def test_deterministic_bundle_path(self, tmp_path):
        def once(root):
            monitor = AlertMonitor(
                rules=[KvHighWaterRule(threshold=0.3)],
                recorder=FlightRecorder(root),
            )
            engine, _ = _engine(alerts=monitor, kv_pool_tokens=4096)
            _run(engine, num_requests=12, input_tokens=256, output_tokens=32)
            return monitor.bundles[0].name

        assert once(tmp_path / "a") == once(tmp_path / "b")


class TestEngineIntegration:
    def test_monitor_inert_without_instrumentation(self):
        model = get_model(MODEL)
        pm = InferencePerfModel(model, H100_SXM)
        engine = ServingEngine(pm)
        bare = _run(engine)
        monitor = AlertMonitor(rules=[KvHighWaterRule(threshold=0.3)])
        engine2, _ = _engine(alerts=monitor)
        observed = _run(engine2)
        assert bare.makespan == observed.makespan

    def test_alert_times_are_simulated(self):
        monitor = AlertMonitor(rules=[KvHighWaterRule(threshold=0.3)])
        engine, _ = _engine(alerts=monitor, kv_pool_tokens=4096)
        result = _run(engine, num_requests=12, input_tokens=256,
                      output_tokens=32)
        assert 0 < monitor.fired[0].time <= result.makespan
