"""The gate gates itself: `repro lint` must be clean on this repo,
and the CLI exit codes must behave as documented."""

import argparse
import json
import pathlib

from repro.core.cli import build_parser
from repro.lint.baseline import Baseline
from repro.lint.cli import cmd_lint
from repro.lint.core import run_lint

REPO = pathlib.Path(__file__).resolve().parents[1]


def _ns(**overrides) -> argparse.Namespace:
    defaults = dict(list_rules=False, root=str(REPO), rules=None, check=False,
                    json=False, out=None, baseline=None, update_baseline=False,
                    update_parity=False, graph=False, graph_format="dot",
                    no_cache=False)
    defaults.update(overrides)
    return argparse.Namespace(**defaults)


class TestSelfCheck:
    def test_repo_is_lint_clean(self):
        assert run_lint(REPO) == []

    def test_committed_baseline_is_empty(self):
        # the gate starts green with nothing grandfathered: every finding
        # was fixed or inline-suppressed, none baselined away
        base = Baseline.at_root(REPO)
        assert base.exists
        assert base.known_keys() == set()

    def test_wall_channel_files_exist(self):
        # the DET001 allowlist must track reality, not history
        from repro.lint.determinism import WALL_CHANNEL
        for rel in WALL_CHANNEL:
            assert (REPO / rel).is_file(), rel


class TestCliExitCodes:
    def test_clean_run_exits_zero(self, capsys):
        assert cmd_lint(_ns()) == 0
        assert "clean" in capsys.readouterr().out

    def test_check_mode_exits_zero(self, capsys):
        assert cmd_lint(_ns(check=True)) == 0

    def test_rule_subset_selection(self, capsys):
        assert cmd_lint(_ns(rules="PAR", check=True)) == 0

    def test_bad_selector_exits_two(self, capsys):
        assert cmd_lint(_ns(rules="NOPE")) == 2

    def test_bad_root_exits_two(self, tmp_path, capsys):
        assert cmd_lint(_ns(root=str(tmp_path))) == 2

    def test_json_report_written(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert cmd_lint(_ns(json=True, out=str(out))) == 0
        doc = json.loads(out.read_text())
        assert doc["summary"]["total"] == 0

    def test_list_rules(self, capsys):
        assert cmd_lint(_ns(list_rules=True)) == 0
        out = capsys.readouterr().out
        assert "DET001" in out and "REG004" in out

    def test_violation_fails_plain_run(self, tmp_path, capsys):
        pkg = tmp_path / "src/repro"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text("import time\nt = time.time()\n")
        assert cmd_lint(_ns(root=str(tmp_path))) == 1

    def test_check_gates_only_new_findings(self, tmp_path, capsys):
        pkg = tmp_path / "src/repro"
        pkg.mkdir(parents=True)
        bad = pkg / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        # grandfather the existing finding, then --check passes
        assert cmd_lint(_ns(root=str(tmp_path), update_baseline=True)) == 0
        assert cmd_lint(_ns(root=str(tmp_path), check=True)) == 0
        # a new finding still fails the gate
        bad.write_text("import time\nt = time.time()\nu = time.monotonic()\n")
        assert cmd_lint(_ns(root=str(tmp_path), check=True)) == 1

    def test_parser_wires_lint_subcommand(self):
        args = build_parser().parse_args(["lint", "--check", "--rules", "PAR"])
        assert args.func is cmd_lint
        assert args.check and args.rules == "PAR"
