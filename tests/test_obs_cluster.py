"""Cluster telemetry: occupancy, link accounting, expert heat, reports."""

from __future__ import annotations

import json

import pytest

from repro.hardware.gpus import H100_SXM
from repro.models.config import AttentionConfig, ModelConfig
from repro.models.zoo import get_model
from repro.obs.alerts import AlertMonitor, DeviceSaturationRule, FlightRecorder
from repro.obs.cluster import (
    DEVICE_TID_BASE,
    LINK_TID_BASE,
    ClusterTelemetry,
    step_utilization,
)
from repro.obs.harness import REFERENCE_PLAN, clustered_serving_run
from repro.obs.report import render_bundle_report, render_run_report, report_html
from repro.obs.trace import filter_trace_events
from repro.parallel.plan import SINGLE_DEVICE, ParallelPlan
from repro.perfmodel.inference import InferencePerfModel
from repro.optim.quantization import FP16_CONFIG


def _telemetry(model_name: str = "OLMoE-1B-7B",
               plan: ParallelPlan = REFERENCE_PLAN,
               window_s: float = 0.05) -> ClusterTelemetry:
    model = get_model(model_name)
    perf = InferencePerfModel(model, H100_SXM, plan=plan)
    return ClusterTelemetry(perf, window_s=window_s)


DENSE_MODEL = ModelConfig(
    name="dense-fixture",
    num_layers=4,
    hidden_size=256,
    vocab_size=1024,
    attention=AttentionConfig(num_heads=8, num_kv_heads=8, head_dim=32),
    dense_ffn_dim=512,
)
"""A tiny dense model: an EP deployment of it owns an all-to-all link
that never carries a byte (the zero-traffic case)."""


class TestOccupancy:
    def test_sums_to_makespan(self):
        result, obs = clustered_serving_run(num_requests=16)
        occ = obs.cluster.occupancy_summary()
        total = occ["busy_s"] + occ["comm_blocked_s"] + occ["idle_s"]
        assert total == pytest.approx(result.makespan, rel=1e-9)
        assert occ["busy_s"] > 0
        assert occ["comm_blocked_s"] > 0  # TP4+EP4 pays collectives

    def test_single_device_has_no_comm(self):
        result, obs = clustered_serving_run(plan=SINGLE_DEVICE,
                                            num_requests=16)
        occ = obs.cluster.occupancy_summary()
        assert obs.cluster.links == {}
        assert occ["comm_blocked_s"] == 0.0
        total = occ["busy_s"] + occ["idle_s"]
        assert total == pytest.approx(result.makespan, rel=1e-9)

    def test_summary_degrades_for_single_device(self):
        _, obs = clustered_serving_run(plan=SINGLE_DEVICE, num_requests=8)
        summary = obs.cluster.summary()
        assert summary["devices"] == 1
        assert summary["links"] == {}
        # the report must render the degenerate topology, not crash
        md = render_run_report(_, obs)
        assert "no interconnect links" in md


class TestLinkAccounting:
    def test_link_bytes_match_collective_formulas(self):
        cluster = _telemetry()
        model, plan = cluster.model, cluster.plan
        m, h, ab = 8.0, model.hidden_size, FP16_CONFIG.activation_bytes
        cluster.on_iteration(0.0, 0.01, {"interconnect": 0.002},
                             phase="decode", num_tokens=m, batch=m,
                             kv_len=512.0)
        # EP all-to-all: dispatch + combine per MoE layer, (ep-1)/ep of
        # the routed activations cross the fabric
        expect_ep = 2.0 * model.num_moe_layers * (plan.ep - 1) / plan.ep \
            * (m * model.moe.top_k * h * ab)
        assert cluster._link_bytes["ep_alltoall"] == pytest.approx(expect_ep)
        # TP all-reduce: ring moves 2(tp-1)/tp of the payload, once per
        # layer (OLMoE is all-MoE and expert-parallel, so no FFN allreduce)
        expect_tp = model.num_layers * 2.0 * (plan.tp - 1) / plan.tp \
            * (m * h * ab)
        assert cluster._link_bytes["tp_allreduce"] == pytest.approx(expect_tp)

    def test_zero_traffic_ep_link_on_dense_model(self):
        perf = InferencePerfModel(DENSE_MODEL, H100_SXM,
                                  plan=ParallelPlan(tp=2, ep=2))
        cluster = ClusterTelemetry(perf, window_s=0.05)
        cluster.on_iteration(0.0, 0.01, {}, phase="decode",
                             num_tokens=4, batch=4, kv_len=128.0)
        cluster.on_run_end(0.1)
        # the link exists (it is part of the topology) but carries nothing
        assert "ep_alltoall" in cluster.links
        assert cluster._link_bytes["ep_alltoall"] == 0.0
        assert cluster.link_utilization("ep_alltoall") == 0.0
        assert all(u == 0.0
                   for u in cluster.link_window_utilization("ep_alltoall"))

    def test_run_level_utilization_bounded(self):
        _, obs = clustered_serving_run(num_requests=16)
        for name in obs.cluster.links:
            util = obs.cluster.link_utilization(name)
            assert 0.0 <= util < 1.0

    def test_pcie_offload_link_is_lazy(self):
        cluster = _telemetry()
        assert "pcie_offload" not in cluster.links
        cluster.on_pcie_bytes(1e9, t=0.01)
        assert "pcie_offload" in cluster.links
        assert cluster._link_bytes["pcie_offload"] == 1e9
        with pytest.raises(ValueError):
            cluster.on_pcie_bytes(-1.0, t=0.02)


class TestExpertHeat:
    def test_empty_windows_have_zero_gini(self):
        # instrumented but idle: every window the run spans closes empty
        model = get_model("OLMoE-1B-7B")
        from repro.obs.instrument import Instrumentation
        obs = Instrumentation.on(model=model)
        perf = InferencePerfModel(model, H100_SXM, plan=REFERENCE_PLAN)
        cluster = ClusterTelemetry(perf, routing=obs.routing, window_s=0.05)
        cluster.on_run_end(0.2)
        assert len(cluster.windows) == 4
        for w in cluster.windows:
            assert w.is_empty
            assert w.tokens == 0
            assert w.gini == 0.0
            assert w.imbalance == 0.0

    def test_live_run_fills_windows(self):
        result, obs = clustered_serving_run(num_requests=16)
        windows = obs.cluster.windows
        assert windows, "run must close at least one window"
        assert windows[-1].t_end == pytest.approx(result.makespan)
        non_empty = [w for w in windows if not w.is_empty]
        assert non_empty
        for w in non_empty:
            assert w.tokens > 0
            assert 0.0 <= w.gini < 1.0
            assert w.imbalance >= 1.0
            # replication-aware device loads preserve the window's tokens
            assert sum(w.device_load) == pytest.approx(w.tokens, rel=1e-6)

    def test_windows_are_contiguous(self):
        _, obs = clustered_serving_run(num_requests=16)
        windows = obs.cluster.windows
        for prev, cur in zip(windows, windows[1:]):
            assert cur.t_start == pytest.approx(prev.t_end)


class TestUtilizationGauges:
    def test_sparse_never_exceeds_dense(self):
        _, obs = clustered_serving_run(num_requests=16)
        util = obs.cluster.utilization_summary()
        assert 0.0 < util["sparse_mfu"] < util["dense_mfu"]
        assert 0.0 < util["sparse_mbu"] < util["dense_mbu"]

    def test_step_utilization_dense_equals_sparse_without_moe(self):
        perf = InferencePerfModel(DENSE_MODEL, H100_SXM)
        u = step_utilization(perf.steps, num_tokens=4, batch=4,
                             kv_len=128, phase="decode")
        assert u["sparse_mfu"] == pytest.approx(u["dense_mfu"])
        assert u["sparse_mbu"] == pytest.approx(u["dense_mbu"])

    def test_gauges_published_with_unit_suffixes(self):
        _, obs = clustered_serving_run(num_requests=16)
        names = {m["name"] for m in obs.metrics.snapshot()["metrics"]}
        for expected in ("device_busy_seconds_total", "link_bytes_total",
                         "link_utilization", "cluster_sparse_mfu_ratio",
                         "cluster_dense_mbu_ratio",
                         "expert_heat_windows_count"):
            assert expected in names


class TestSaturationAlert:
    def test_fires_and_bundles_cluster_json(self, tmp_path):
        monitor = AlertMonitor(
            rules=[DeviceSaturationRule(threshold=1e-9, min_windows=1)],
            recorder=FlightRecorder(tmp_path, last_n=8),
        )
        clustered_serving_run(num_requests=16, alerts=monitor)
        assert [a.rule for a in monitor.fired] == ["device_saturation"]
        alert = monitor.fired[0]
        assert alert.context["link"] in ("tp_allreduce", "ep_alltoall")
        assert alert.context["bytes_total"] > 0
        (bundle,) = monitor.bundles
        payload = json.loads((bundle / "cluster.json").read_text())
        assert payload["plan"] == REFERENCE_PLAN.label
        assert "ep_alltoall" in payload["links"]
        # the bundle renders standalone
        md = render_bundle_report(bundle)
        assert "Flight recorder" in md or "Cluster" in md

    def test_quiet_below_threshold(self):
        monitor = AlertMonitor(
            rules=[DeviceSaturationRule(threshold=1.0, min_windows=1)])
        clustered_serving_run(num_requests=16, alerts=monitor)
        assert monitor.fired == []


class TestChromeLanes:
    def test_device_lanes_and_link_counters(self):
        _, obs = clustered_serving_run(num_requests=16)
        events = obs.cluster.chrome_events()
        tids = {e["tid"] for e in events}
        for d in range(obs.cluster.num_devices):
            assert DEVICE_TID_BASE + d in tids
        for i in range(len(obs.cluster.links)):
            assert LINK_TID_BASE + i in tids
        # every B has a matching E per track
        for tid in tids:
            track = [e for e in events if e["tid"] == tid]
            assert sum(e["ph"] == "B" for e in track) == \
                sum(e["ph"] == "E" for e in track)

    def test_device_filter_keeps_one_lane(self):
        _, obs = clustered_serving_run(num_requests=16)
        events = obs.cluster.chrome_events()
        kept = filter_trace_events(events, device=2)
        assert kept
        non_meta = [e for e in kept if e["ph"] != "M"]
        assert non_meta
        assert {e["tid"] for e in non_meta} == {DEVICE_TID_BASE + 2}

    def test_link_filter_keeps_one_counter_track(self):
        _, obs = clustered_serving_run(num_requests=16)
        events = obs.cluster.chrome_events()
        kept = filter_trace_events(events, link="ep_alltoall")
        non_meta = [e for e in kept if e["ph"] != "M"]
        assert non_meta
        assert all(e["ph"] == "C" for e in non_meta)
        assert all(e["args"]["link"] == "ep_alltoall" for e in non_meta)


class TestRunReport:
    def test_byte_identical_across_two_seeded_runs(self):
        first = render_run_report(*clustered_serving_run(num_requests=16))
        second = render_run_report(*clustered_serving_run(num_requests=16))
        assert first == second
        assert first.encode() == second.encode()

    def test_report_covers_every_section(self):
        result, obs = clustered_serving_run(num_requests=16)
        md = render_run_report(result, obs)
        for heading in ("## Serving summary", "## Device occupancy",
                        "## Interconnect", "## Expert heat",
                        "## Utilization (MoE-CAP)", "### Comm waterfall",
                        "### Heat windows", "## Metrics"):
            assert heading in md, f"missing section {heading}"
        assert REFERENCE_PLAN.label in md

    def test_html_wraps_and_escapes(self):
        result, obs = clustered_serving_run(num_requests=16)
        md = render_run_report(result, obs)
        html = report_html(md + " <script>", title="t")
        assert html.startswith("<!DOCTYPE html>")
        assert "&lt;script&gt;" in html

    def test_constructor_rejects_bad_window(self):
        model = get_model("OLMoE-1B-7B")
        perf = InferencePerfModel(model, H100_SXM)
        with pytest.raises(ValueError):
            ClusterTelemetry(perf, window_s=0.0)
