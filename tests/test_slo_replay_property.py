"""Property test: flight-recorder bundles replay byte-identically.

The SLO burn-rate rules hang postmortem bundles off live engine state
mid-run; if arming them (or dumping a bundle) perturbed the simulation in
any way, the bundle of a replay would drift.  Whatever seeded storm
hypothesis throws at the scenario, two runs must produce bundle trees
that match file-for-file, byte-for-byte — and the reports around them
must match too.
"""

from __future__ import annotations

import dataclasses
import pathlib
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.harness import ChaosConfig
from repro.obs.slo import fault_storm_config, run_slo_scenario


def _bundle_bytes(root: pathlib.Path) -> dict[str, bytes]:
    """Every file under a flight-recorder dir, keyed by relative path."""
    return {str(p.relative_to(root)): p.read_bytes()
            for p in sorted(root.rglob("*")) if p.is_file()}


def _normalized(report: dict, out_dir: pathlib.Path) -> dict:
    """The report with its bundle paths made run-independent."""
    out = dict(report)
    out["bundles"] = [str(pathlib.Path(b).relative_to(out_dir))
                      for b in report["bundles"]]
    return out


def _run_twice(config: ChaosConfig) -> None:
    with tempfile.TemporaryDirectory() as tmp:
        dirs = pathlib.Path(tmp) / "a", pathlib.Path(tmp) / "b"
        reports = [run_slo_scenario(config, out_dir=d) for d in dirs]
        assert (_normalized(reports[0], dirs[0])
                == _normalized(reports[1], dirs[1]))
        assert _bundle_bytes(dirs[0]) == _bundle_bytes(dirs[1])


class TestFlightRecorderReplay:
    @settings(max_examples=8, deadline=None)
    @given(
        fault_seed=st.integers(min_value=0, max_value=31),
        fault_rate=st.sampled_from([4.0, 6.0, 8.0]),
        num_requests=st.sampled_from([24, 40]),
    )
    def test_seeded_storm_bundles_are_byte_identical(self, fault_seed,
                                                     fault_rate,
                                                     num_requests):
        _run_twice(dataclasses.replace(
            fault_storm_config(), fault_seed=fault_seed,
            fault_rate=fault_rate, num_requests=num_requests))

    def test_canonical_storm_pages_and_bundles(self):
        """The directed case: the canonical storm must actually page (so
        the property above is not vacuous) and its bundles must carry the
        SLO report alongside the usual postmortem artefacts."""
        with tempfile.TemporaryDirectory() as tmp:
            out = pathlib.Path(tmp)
            report = run_slo_scenario(fault_storm_config(), out_dir=out)
            assert report["alerts"]
            assert report["bundles"]
            files = _bundle_bytes(out)
            assert any(p.endswith("slo.json") for p in files)
            assert any(p.endswith("alert.json") for p in files)
