"""Tests for repro.core.charts (text chart rendering)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.charts import bar_chart, heatmap, line_chart


class TestLineChart:
    def test_basic_render(self):
        out = line_chart({"a": [(1, 10), (2, 20), (4, 40)]},
                         title="demo", width=30, height=8)
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert any("o" in l for l in lines)
        assert lines[-1].startswith("legend:")
        assert "o=a" in lines[-1]

    def test_multiple_series_distinct_markers(self):
        out = line_chart({"a": [(1, 1), (2, 2)], "b": [(1, 2), (2, 1)]},
                         width=20, height=6)
        assert "o=a" in out and "x=b" in out
        assert "o" in out and "x" in out

    def test_logx(self):
        out = line_chart({"s": [(1, 1), (128, 2)]}, width=20, height=6, logx=True)
        assert "128" in out

    def test_logx_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            line_chart({"s": [(0, 1), (2, 2)]}, logx=True)

    def test_constant_y_handled(self):
        out = line_chart({"s": [(1, 5), (2, 5)]}, width=20, height=6)
        assert "5" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"s": [(1, 1)]}, width=4, height=2)
        with pytest.raises(ValueError):
            line_chart({"s": []})

    def test_extremes_are_labelled(self):
        out = line_chart({"s": [(1, 100), (2, 900)]}, width=20, height=6)
        assert "900" in out and "100" in out


class TestBarChart:
    def test_render(self):
        out = bar_chart({"fast": 100.0, "slow": 25.0}, title="t", width=20)
        lines = out.splitlines()
        assert lines[0] == "t"
        assert lines[1].count("#") == 20
        assert lines[2].count("#") == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_zero_values_ok(self):
        out = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in out


class TestHeatmap:
    def test_render(self):
        m = np.array([[0, 5, 10], [10, 5, 0]])
        out = heatmap(m, title="h")
        lines = out.splitlines()
        assert lines[0] == "h"
        assert lines[1].startswith("layer  0 |")
        assert "@" in lines[1]  # max glyph present
        assert lines[-1].startswith("scale:")

    def test_wide_matrix_downsampled(self):
        m = np.ones((2, 500))
        out = heatmap(m, max_width=50)
        body = out.splitlines()[0]
        assert len(body) < 80

    def test_zero_matrix(self):
        out = heatmap(np.zeros((2, 4)))
        assert "@" not in out.splitlines()[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            heatmap(np.zeros(4))
        with pytest.raises(ValueError):
            heatmap(np.zeros((0, 2)))
