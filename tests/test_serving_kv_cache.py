"""Tests for repro.serving.kv_cache (paged block manager)."""

from __future__ import annotations

import pytest

from repro.serving.kv_cache import PagedKVCache


@pytest.fixture
def pool():
    return PagedKVCache(num_blocks=8, block_size=16)


class TestAllocation:
    def test_blocks_needed(self, pool):
        assert pool.blocks_needed(1) == 1
        assert pool.blocks_needed(16) == 1
        assert pool.blocks_needed(17) == 2

    def test_allocate_and_free(self, pool):
        pool.allocate(1, 40)  # 3 blocks
        assert pool.used_blocks == 3
        assert pool.num_tokens(1) == 40
        assert len(pool.block_table(1)) == 3
        pool.free(1)
        assert pool.free_blocks == 8

    def test_double_allocate_rejected(self, pool):
        pool.allocate(1, 10)
        with pytest.raises(ValueError, match="already"):
            pool.allocate(1, 10)

    def test_exhaustion(self, pool):
        pool.allocate(1, 8 * 16)
        with pytest.raises(MemoryError):
            pool.allocate(2, 1)

    def test_can_allocate_watermark(self, pool):
        pool.allocate(1, 7 * 16)
        assert pool.can_allocate(16)
        assert not pool.can_allocate(16, watermark_blocks=1)

    def test_free_unknown(self, pool):
        with pytest.raises(KeyError):
            pool.free(99)

    def test_block_ids_unique_across_sequences(self, pool):
        pool.allocate(1, 32)
        pool.allocate(2, 32)
        assert not set(pool.block_table(1)) & set(pool.block_table(2))


class TestAppend:
    def test_append_within_block(self, pool):
        pool.allocate(1, 10)
        assert pool.can_append_slots(1, 6)
        pool.append_slots(1, 6)
        assert pool.num_tokens(1) == 16
        assert len(pool.block_table(1)) == 1

    def test_append_grows_blocks(self, pool):
        pool.allocate(1, 16)
        pool.append_slots(1, 1)
        assert len(pool.block_table(1)) == 2

    def test_append_exhaustion(self, pool):
        pool.allocate(1, 7 * 16)  # 7 blocks, all full
        pool.allocate(2, 16)      # 8th block, full
        # pool is now completely allocated; any growth must fail
        with pytest.raises(MemoryError):
            pool.append_slots(2, 1)

    def test_can_append_guard(self, pool):
        pool.allocate(1, 8 * 16)
        assert not pool.can_append_slots(1, 1)

    def test_append_validation(self, pool):
        pool.allocate(1, 4)
        with pytest.raises(ValueError):
            pool.append_slots(1, 0)
        with pytest.raises(KeyError):
            pool.append_slots(7, 1)


class TestLifecycle:
    def test_utilization(self, pool):
        assert pool.utilization == 0.0
        pool.allocate(1, 4 * 16)
        assert pool.utilization == pytest.approx(0.5)

    def test_free_returns_blocks_for_reuse(self, pool):
        pool.allocate(1, 8 * 16)
        pool.free(1)
        pool.allocate(2, 8 * 16)  # must succeed after free
        assert pool.used_blocks == 8

    def test_reset(self, pool):
        pool.allocate(1, 32)
        pool.reset()
        assert pool.free_blocks == 8
        assert not pool.has_sequence(1)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PagedKVCache(0, 16)
        with pytest.raises(ValueError):
            PagedKVCache(8, 0)
