"""Tests for repro.serving.kv_cache (paged block manager)."""

from __future__ import annotations

import pytest

from repro.serving.kv_cache import PagedKVCache


@pytest.fixture
def pool():
    return PagedKVCache(num_blocks=8, block_size=16)


class TestAllocation:
    def test_blocks_needed(self, pool):
        assert pool.blocks_needed(1) == 1
        assert pool.blocks_needed(16) == 1
        assert pool.blocks_needed(17) == 2

    def test_allocate_and_free(self, pool):
        pool.allocate(1, 40)  # 3 blocks
        assert pool.used_blocks == 3
        assert pool.num_tokens(1) == 40
        assert len(pool.block_table(1)) == 3
        pool.free(1)
        assert pool.free_blocks == 8

    def test_double_allocate_rejected(self, pool):
        pool.allocate(1, 10)
        with pytest.raises(ValueError, match="already"):
            pool.allocate(1, 10)

    def test_exhaustion(self, pool):
        pool.allocate(1, 8 * 16)
        with pytest.raises(MemoryError):
            pool.allocate(2, 1)

    def test_can_allocate_watermark(self, pool):
        pool.allocate(1, 7 * 16)
        assert pool.can_allocate(16)
        assert not pool.can_allocate(16, watermark_blocks=1)

    def test_free_unknown(self, pool):
        with pytest.raises(KeyError):
            pool.free(99)

    def test_block_ids_unique_across_sequences(self, pool):
        pool.allocate(1, 32)
        pool.allocate(2, 32)
        assert not set(pool.block_table(1)) & set(pool.block_table(2))


class TestAppend:
    def test_append_within_block(self, pool):
        pool.allocate(1, 10)
        assert pool.can_append_slots(1, 6)
        pool.append_slots(1, 6)
        assert pool.num_tokens(1) == 16
        assert len(pool.block_table(1)) == 1

    def test_append_grows_blocks(self, pool):
        pool.allocate(1, 16)
        pool.append_slots(1, 1)
        assert len(pool.block_table(1)) == 2

    def test_append_exhaustion(self, pool):
        pool.allocate(1, 7 * 16)  # 7 blocks, all full
        pool.allocate(2, 16)      # 8th block, full
        # pool is now completely allocated; any growth must fail
        with pytest.raises(MemoryError):
            pool.append_slots(2, 1)

    def test_can_append_guard(self, pool):
        pool.allocate(1, 8 * 16)
        assert not pool.can_append_slots(1, 1)

    def test_append_validation(self, pool):
        pool.allocate(1, 4)
        with pytest.raises(ValueError):
            pool.append_slots(1, 0)
        with pytest.raises(KeyError):
            pool.append_slots(7, 1)

    def test_try_append_slot_within_block(self, pool):
        pool.allocate(1, 10)
        assert pool.try_append_slot(1)
        assert pool.num_tokens(1) == 11
        assert len(pool.block_table(1)) == 1

    def test_try_append_slot_grows_block(self, pool):
        pool.allocate(1, 16)
        assert pool.try_append_slot(1)
        assert pool.num_tokens(1) == 17
        assert len(pool.block_table(1)) == 2

    def test_try_append_slot_refuses_when_dry(self, pool):
        pool.allocate(1, 7 * 16)
        pool.allocate(2, 16)
        assert not pool.try_append_slot(2)
        assert pool.num_tokens(2) == 16  # state untouched on refusal

    def test_try_append_slot_unknown_sequence(self, pool):
        with pytest.raises(KeyError):
            pool.try_append_slot(42)

    def test_try_append_slot_matches_append_slots(self):
        """The fused probe must walk the same block-id stream as the
        can_append + append pair it replaces."""
        a = PagedKVCache(num_blocks=8, block_size=16)
        b = PagedKVCache(num_blocks=8, block_size=16)
        a.allocate(1, 14)
        b.allocate(1, 14)
        for _ in range(40):
            took_a = a.try_append_slot(1)
            if b.can_append_slots(1, 1):
                b.append_slots(1, 1)
                took_b = True
            else:
                took_b = False
            assert took_a == took_b
        assert a.block_table(1) == b.block_table(1)
        assert a.num_tokens(1) == b.num_tokens(1)


class TestBulkTake:
    def test_take_free_blocks_matches_sequential_pops(self):
        a = PagedKVCache(num_blocks=8, block_size=16)
        b = PagedKVCache(num_blocks=8, block_size=16)
        taken = a._take_free_blocks(5)
        popped = [b._take_free_block() for _ in range(5)]
        assert taken == popped
        assert a.free_blocks == b.free_blocks == 3

    def test_take_free_blocks_drains_entire_pool(self):
        pool = PagedKVCache(num_blocks=4, block_size=16)
        assert len(pool._take_free_blocks(4)) == 4
        assert pool.free_blocks == 0

    def test_take_free_blocks_zero(self, pool):
        assert pool._take_free_blocks(0) == []
        assert pool.free_blocks == 8


class TestLifecycle:
    def test_utilization(self, pool):
        assert pool.utilization == 0.0
        pool.allocate(1, 4 * 16)
        assert pool.utilization == pytest.approx(0.5)

    def test_free_returns_blocks_for_reuse(self, pool):
        pool.allocate(1, 8 * 16)
        pool.free(1)
        pool.allocate(2, 8 * 16)  # must succeed after free
        assert pool.used_blocks == 8

    def test_reset(self, pool):
        pool.allocate(1, 32)
        pool.reset()
        assert pool.free_blocks == 8
        assert not pool.has_sequence(1)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PagedKVCache(0, 16)
        with pytest.raises(ValueError):
            PagedKVCache(8, 0)
