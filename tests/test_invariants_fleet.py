"""Property-based invariant suite for the fleet simulator.

Hypothesis drives :func:`repro.fleet.invariants.check_fleet_invariants`
across random traces × routing policies × replica-kill schedules and
asserts the cluster-scope contracts directly:

* **conservation** — every offered request becomes terminal exactly once
  across the whole fleet (finish/fail on one replica, or one front-door
  shed — never both, never twice), even through kill → re-route chains;
* **monotone clocks** — no replica's simulated clock ever moves
  backwards, and every event log is time-ordered;
* **autoscaler bounds** — scale decisions never leave
  ``[min_replicas, max_replicas]`` on a fault-free fleet;
* **prefix affinity dominance** — with the load escape disabled
  (``router_slack=None``), affinity routing never scores fewer prefix
  cache hits than round-robin on a kill-free templated trace;
* **replay** — same seed, same :func:`fleet_digest`; different seeds
  diverge.

The whole suite runs under a fixed-seed profile (``derandomize=True``,
no example database) so CI replays the exact same ≥200 examples every
run — ``test_example_budget`` pins that floor.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.invariants import InvariantViolation
from repro.faults.schedule import replica_storm
from repro.fleet.admission import AdmissionConfig
from repro.fleet.autoscaler import AutoscalerConfig
from repro.fleet.harness import fleet_smoke_run, smoke_fleet_config
from repro.fleet.invariants import check_fleet_invariants, fleet_digest
from repro.fleet.router import ROUTER_POLICIES
from repro.fleet.simulator import FleetConfig, FleetSimulator
from repro.fleet.traffic import DiurnalSpec, TemplateMix, diurnal_arrivals, \
    synthesize_requests
from repro.workloads.generator import LengthDistribution

# Fixed-seed profile: derandomize makes hypothesis draw the same example
# sequence every run (no ambient entropy, no example database), which is
# what lets CI treat this suite as a deterministic gate.
FLEET_PROFILE = dict(deadline=None, derandomize=True, database=None)

# Example budget per property; test_example_budget pins the suite-wide
# floor the roadmap promises (>= 200 examples per CI run).
EXAMPLES_CORE = 70
EXAMPLES_AUTOSCALER = 45
EXAMPLES_AFFINITY = 60
EXAMPLES_REPLAY = 30


def test_example_budget():
    """The suite must keep driving >= 200 fixed-seed examples."""
    total = (EXAMPLES_CORE + EXAMPLES_AUTOSCALER + EXAMPLES_AFFINITY
             + EXAMPLES_REPLAY)
    assert total >= 200


# --------------------------------------------------------------------- #
# small deterministic scenario builders
# --------------------------------------------------------------------- #

def _small_trace(seed: int, n: int, templates: TemplateMix | None = None,
                 base_rps: float = 12.0, peak_rps: float = 60.0):
    """A bursty n-request trace, pure function of the seed."""
    rng = np.random.default_rng(seed)
    spec = DiurnalSpec(base_rps=base_rps, peak_rps=peak_rps, period_s=2.0)
    arrivals = diurnal_arrivals(spec, n, rng)
    return synthesize_requests(
        n, rng, arrivals,
        lengths=LengthDistribution(mean_input=96, mean_output=12, sigma=0.3),
        templates=templates,
    )


def _small_config(policy: str, num_replicas: int,
                  storm_seed: int | None = None,
                  autoscaler: AutoscalerConfig | None = None,
                  **overrides) -> FleetConfig:
    kills = None
    if storm_seed is not None:
        kills = replica_storm(storm_seed, horizon_s=1.5, rate_per_s=1.0,
                              num_replicas=num_replicas, mean_outage_s=0.75,
                              permanent_fraction=0.3)
    kwargs = dict(
        num_replicas=num_replicas,
        policy=policy,
        kv_pool_tokens=16_384,
        max_num_seqs=8,
        enable_prefix_caching=True,
        admission=AdmissionConfig(max_backlog_per_replica=16),
        autoscaler=autoscaler,
        replica_kills=kills,
    )
    kwargs.update(overrides)
    return FleetConfig(**kwargs)


def _assert_monotone_clocks(result) -> None:
    for replica in result.replicas:
        assert not replica.clock_violations, replica.clock_violations[0]
        times = [e.time for e in replica.engine.log.events]
        for earlier, later in zip(times, times[1:]):
            assert later >= earlier - 1e-12, (
                f"replica {replica.replica_id} log time went backwards: "
                f"{earlier} -> {later}")


# --------------------------------------------------------------------- #
# conservation + coherence across traces x policies x storms
# --------------------------------------------------------------------- #

class TestFleetConservation:
    @settings(max_examples=EXAMPLES_CORE, **FLEET_PROFILE)
    @given(seed=st.integers(0, 2**16),
           policy=st.sampled_from(ROUTER_POLICIES),
           num_replicas=st.integers(1, 3),
           n=st.integers(8, 20),
           storm=st.booleans(),
           templated=st.booleans())
    def test_every_request_terminal_exactly_once(
            self, seed, policy, num_replicas, n, storm, templated):
        templates = TemplateMix(num_templates=4, templated_fraction=0.7,
                                prefix_tokens=64) if templated else None
        config = _small_config(policy, num_replicas,
                               storm_seed=seed if storm else None)
        result = FleetSimulator(config).run(
            _small_trace(seed, n, templates=templates))
        # conservation, routing-log sanity, per-replica engine coherence
        check_fleet_invariants(result, config.autoscaler)
        _assert_monotone_clocks(result)
        # every offered request is accounted for, in exactly one bucket
        finished = sum(1 for r in result.requests if r.is_finished)
        failed = sum(1 for r in result.requests
                     if r.is_failed and r not in result.shed)
        assert finished + failed + result.num_shed == n
        assert len(fleet_digest(result)) == 64


# --------------------------------------------------------------------- #
# autoscaler bounds on a fault-free fleet
# --------------------------------------------------------------------- #

class TestAutoscalerBounds:
    @settings(max_examples=EXAMPLES_AUTOSCALER, **FLEET_PROFILE)
    @given(seed=st.integers(0, 2**16),
           min_replicas=st.integers(1, 2),
           extra=st.integers(1, 3),
           cooldown=st.integers(0, 2))
    def test_decisions_never_leave_bounds(self, seed, min_replicas, extra,
                                          cooldown):
        autoscaler = AutoscalerConfig(
            min_replicas=min_replicas,
            max_replicas=min_replicas + extra,
            interval_s=0.2,
            scale_up_backlog=2.0,
            cooldown_ticks=cooldown,
        )
        config = _small_config("least_kv", min_replicas,
                               autoscaler=autoscaler)
        result = FleetSimulator(config).run(
            _small_trace(seed, 14, base_rps=20.0, peak_rps=80.0))
        check_fleet_invariants(result, autoscaler)
        assert result.scale_decisions, "autoscaler never ticked"
        # fault-free: the floor is hard for *every* decision, not just
        # scale-downs (the relaxation exists only for replica-loss runs)
        for decision in result.scale_decisions:
            assert autoscaler.min_replicas <= decision.replicas_after
            assert decision.replicas_after <= autoscaler.max_replicas
            assert decision.action in ("up", "down", "hold")
        assert result.peak_replicas <= autoscaler.max_replicas


# --------------------------------------------------------------------- #
# prefix affinity never loses cache hits to round-robin
# --------------------------------------------------------------------- #

class TestPrefixAffinityDominance:
    @settings(max_examples=EXAMPLES_AFFINITY, **FLEET_PROFILE)
    @given(seed=st.integers(0, 2**16),
           num_replicas=st.integers(1, 3),
           n=st.integers(8, 18),
           num_templates=st.integers(1, 5),
           fraction=st.sampled_from((0.6, 0.8, 1.0)))
    def test_pure_affinity_hits_dominate_round_robin(
            self, seed, num_replicas, n, num_templates, fraction):
        """With the load escape off and no kills, every non-first request
        of a template lands on the replica already holding its prefix, so
        affinity's hit count is the trace maximum — round-robin can tie
        it, never beat it."""
        templates = TemplateMix(num_templates=num_templates,
                                templated_fraction=fraction,
                                prefix_tokens=64)

        def run(policy: str):
            # generous KV + no storm + no autoscaler: nothing evicts a
            # cached prefix, so hit counts depend on routing alone
            config = _small_config(
                policy, num_replicas,
                kv_pool_tokens=65_536, max_num_seqs=16,
                admission=AdmissionConfig(max_backlog_per_replica=64),
                router_slack=None,
            )
            result = FleetSimulator(config).run(
                _small_trace(seed, n, templates=templates))
            check_fleet_invariants(result)
            assert result.num_shed == 0, "capacity must not confound hits"
            return result

        affinity = run("prefix_affinity")
        round_robin = run("round_robin")
        assert affinity.kv_lookups == round_robin.kv_lookups
        assert affinity.kv_hits >= round_robin.kv_hits


# --------------------------------------------------------------------- #
# replay: digest equality under the same seed
# --------------------------------------------------------------------- #

class TestFleetReplay:
    @settings(max_examples=EXAMPLES_REPLAY, **FLEET_PROFILE)
    @given(seed=st.integers(0, 2**16),
           policy=st.sampled_from(ROUTER_POLICIES))
    def test_same_seed_same_digest(self, seed, policy):
        def digest() -> str:
            config = _small_config(policy, 2, storm_seed=seed)
            result = FleetSimulator(config).run(_small_trace(seed, 10))
            check_fleet_invariants(result)
            return fleet_digest(result)

        assert digest() == digest()

    def test_different_seeds_diverge(self):
        def digest(seed: int) -> str:
            config = _small_config("least_kv", 2)
            return fleet_digest(
                FleetSimulator(config).run(_small_trace(seed, 10)))

        assert digest(1) != digest(2)


# --------------------------------------------------------------------- #
# worked examples on the canonical smoke scenario
# --------------------------------------------------------------------- #

class TestSmokeScenario:
    def test_smoke_run_passes_full_audit(self):
        config = smoke_fleet_config()
        result = fleet_smoke_run()
        check_fleet_invariants(result, config.autoscaler)
        assert result.num_kills >= 1, "the storm must land at least one kill"
        assert result.heals, "the storm must land at least one heal"
        assert result.kv_hits > 0, "templated smoke traffic must hit"

    def test_audit_rejects_doctored_runs(self):
        result = fleet_smoke_run()
        # claim a finished request was *also* shed: the conservation audit
        # must see the double-termination
        victim = next(r for r in result.requests if r.is_finished)
        result.shed.append(victim)
        with pytest.raises(InvariantViolation):
            check_fleet_invariants(result)
