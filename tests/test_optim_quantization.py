"""Tests for repro.optim.quantization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optim.quantization import (
    FP8_CONFIG,
    FP16_CONFIG,
    PRESETS,
    QuantConfig,
    W4A16_CONFIG,
    W8A16_CONFIG,
    get_preset,
    quantization_error,
)


class TestPresets:
    def test_fp16_widths(self):
        assert FP16_CONFIG.weight_bytes == 2.0
        assert FP16_CONFIG.activation_bytes == 2.0
        assert FP16_CONFIG.kv_bytes == 2.0
        assert FP16_CONFIG.compute_dtype_name == "fp16"

    def test_fp8_is_w8a8_with_fp16_kv(self):
        """vLLM-style FP8: weights+activations FP8, KV cache FP16."""
        assert FP8_CONFIG.weight_bytes == 1.0
        assert FP8_CONFIG.activation_bytes == 1.0
        assert FP8_CONFIG.kv_bytes == 2.0
        assert FP8_CONFIG.compute_dtype_name == "fp8_e4m3"

    def test_weight_only_computes_in_activation_dtype(self):
        assert W8A16_CONFIG.compute_dtype_name == "fp16"
        assert W4A16_CONFIG.weight_bytes == 0.5

    def test_get_preset(self):
        assert get_preset("fp8") is FP8_CONFIG
        assert get_preset(FP16_CONFIG) is FP16_CONFIG
        with pytest.raises(KeyError, match="known"):
            get_preset("int2")

    def test_make_defaults(self):
        cfg = QuantConfig.make("custom", "int8", "fp16")
        assert cfg.kv_bytes == 2.0  # defaults to activation dtype
        assert cfg.compute_dtype_name == "fp16"

    def test_all_presets_named(self):
        for name, cfg in PRESETS.items():
            assert cfg.name == name


class TestQuantizationError:
    def test_fp16_error_tiny(self, rng):
        x = rng.normal(0, 0.05, 4096).astype(np.float32)
        assert quantization_error(x, FP16_CONFIG) < 1e-3

    def test_error_ordering(self, rng):
        x = rng.normal(0, 0.05, 8192).astype(np.float32)
        e16 = quantization_error(x, FP16_CONFIG)
        e8 = quantization_error(x, FP8_CONFIG)
        e4 = quantization_error(x, W4A16_CONFIG)
        assert e16 < e8 < e4

    def test_fp8_error_in_published_band(self, rng):
        """E4M3 on unit-scale weights: ~1-4% relative RMS error."""
        x = rng.normal(0, 1.0, 16384).astype(np.float32)
        assert 0.005 < quantization_error(x, FP8_CONFIG) < 0.05

    def test_zero_input(self):
        assert quantization_error(np.zeros(16), FP8_CONFIG) == 0.0
