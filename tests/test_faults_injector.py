"""Unit tests for repro.faults.injector — health model and pricing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.harness import ChaosConfig, build_chaos_engine
from repro.faults.injector import ClusterHealth, FaultDomain, FaultInjector
from repro.faults.policies import DegradePolicy, RetryPolicy
from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule
from repro.parallel.expert_parallel import replicated_round_robin_placement
from repro.serving.events import EventType


def _engine(schedule, **config):
    base = dict(num_requests=8, input_tokens=128, output_tokens=16,
                kv_pool_tokens=16_384, fault_rate=0.0)
    base.update(config)
    return build_chaos_engine(ChaosConfig(**base), schedule=schedule)


def _schedule(*events):
    return FaultSchedule(events=tuple(events))


class TestFaultDomain:
    def test_defaults(self):
        domain = FaultDomain()
        assert domain.num_devices == 1 and domain.ep == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultDomain(num_devices=0)
        with pytest.raises(ValueError):
            FaultDomain(top_k=-1)
        placement = replicated_round_robin_placement(8, 4, replicas=2)
        with pytest.raises(ValueError):
            FaultDomain(ep=2, placement=placement)  # placement spans 4
        FaultDomain(ep=4, placement=placement)


class TestClusterHealth:
    def test_surviving_and_degraded(self):
        health = ClusterHealth(num_devices=4)
        assert health.num_surviving == 4
        assert not health.is_degraded
        health.lost_devices.add(1)
        assert health.num_surviving == 3
        assert health.is_degraded
        summary = health.summary()
        assert summary["lost_devices"] == [1]
        assert summary["num_surviving"] == 3


class TestInjectorLifecycle:
    def test_unarmed_schedule_is_inactive(self):
        injector = FaultInjector(FaultSchedule())
        assert not injector.active

    def test_device_loss_reserves_and_heal_releases(self):
        event = FaultEvent(time=0.01, kind=FaultKind.DEVICE_LOSS, target=2,
                           duration_s=0.1)
        engine, injector = _engine(_schedule(event), num_devices=4)
        share = engine.kv.num_blocks // 4
        engine.run()
        assert injector.counts["faults_applied"] == 1
        assert injector.counts["recoveries"] == 1
        assert engine.kv.reserved_blocks == 0
        assert injector.health.lost_devices == set()
        fault_events = engine.log.of_type(EventType.FAULT)
        assert len(fault_events) == 1
        assert "device 2 lost" in fault_events[0].detail
        assert share > 0

    def test_overlapping_losses_of_one_device_heal_once_each(self):
        """Two overlapping transient losses of the same device: it stays
        lost until BOTH heal (refcounted, not toggled)."""
        first = FaultEvent(time=0.01, kind=FaultKind.DEVICE_LOSS, target=1,
                           duration_s=0.30)
        second = FaultEvent(time=0.05, kind=FaultKind.DEVICE_LOSS, target=1,
                            duration_s=0.10)
        engine, injector = _engine(_schedule(first, second), num_devices=4,
                                   output_tokens=64)
        engine.run()
        assert injector.counts["faults_applied"] == 2
        assert injector.counts["recoveries"] == 2
        assert injector.health.lost_devices == set()

    def test_link_degrade_composes_by_max(self):
        slow = FaultEvent(time=0.01, kind=FaultKind.LINK_DEGRADE,
                          magnitude=4.0, duration_s=5.0)
        slower = FaultEvent(time=0.02, kind=FaultKind.LINK_DEGRADE,
                            magnitude=8.0, duration_s=0.05)
        engine, injector = _engine(_schedule(slow, slower))
        injector.advance_to(0.03, engine)
        assert injector.health.link_slowdown == 8.0
        injector.advance_to(0.08, engine)  # the 8x event heals
        assert injector.health.link_slowdown == 4.0

    def test_kv_pressure_fraction_tracks_reservations(self):
        spike = FaultEvent(time=0.01, kind=FaultKind.KV_PRESSURE,
                           magnitude=0.25, duration_s=0.05)
        engine, injector = _engine(_schedule(spike))
        injector.advance_to(0.02, engine)
        assert injector.health.kv_pressure_fraction == pytest.approx(
            int(0.25 * engine.kv.num_blocks) / engine.kv.num_blocks)
        injector.advance_to(0.1, engine)
        assert injector.health.kv_pressure_fraction == 0.0
        assert engine.kv.reserved_blocks == 0

    def test_heal_applies_before_fault_at_a_time_tie(self):
        """A fault landing exactly when another heals must see the healed
        state — deterministic tie-breaking, not insertion order."""
        first = FaultEvent(time=0.01, kind=FaultKind.LINK_DEGRADE,
                           magnitude=8.0, duration_s=0.04)
        second = FaultEvent(time=0.05, kind=FaultKind.LINK_DEGRADE,
                            magnitude=2.0, duration_s=1.0)
        engine, injector = _engine(_schedule(first, second))
        injector.advance_to(0.05, engine)
        assert injector.health.link_slowdown == 2.0


class TestPricing:
    def test_healthy_adjust_is_identity(self):
        engine, injector = _engine(_schedule(FaultEvent(
            time=99.0, kind=FaultKind.DEVICE_LOSS)))
        assert not injector.needs_components
        assert injector.adjust(1.25, None) == 1.25
        comps = {"attention": 0.5, "interconnect": 0.25}
        assert injector.adjust(0.75, dict(comps)) == 0.75

    def test_link_slowdown_prices_the_interconnect_share(self):
        engine, injector = _engine(_schedule(FaultEvent(
            time=0.01, kind=FaultKind.LINK_DEGRADE, magnitude=4.0,
            duration_s=10.0)))
        injector.advance_to(0.02, engine)
        assert injector.needs_components
        comps = {"attention": 0.5, "interconnect": 0.2}
        adjusted = injector.adjust(0.7, comps)
        assert adjusted == pytest.approx(0.5 + 0.2 * 4.0)
        assert comps["interconnect"] == pytest.approx(0.8)
        assert comps["attention"] == 0.5  # compute untouched by link faults

    def test_device_loss_squeezes_compute_onto_survivors(self):
        engine, injector = _engine(_schedule(FaultEvent(
            time=0.01, kind=FaultKind.DEVICE_LOSS, target=0, duration_s=10.0)),
            num_devices=4)
        injector.advance_to(0.02, engine)
        comps = {"attention": 0.3, "expert_ffn": 0.3, "overhead": 0.1}
        adjusted = injector.adjust(0.7, comps)
        # 4 devices' work on 3 survivors: compute scales 4/3, overhead not
        assert comps["attention"] == pytest.approx(0.4)
        assert comps["expert_ffn"] == pytest.approx(0.4)
        assert comps["overhead"] == 0.1
        assert adjusted == pytest.approx(0.9)

    def test_degraded_topk_discounts_experts_and_dispatch(self):
        schedule = _schedule(FaultEvent(
            time=0.01, kind=FaultKind.EXPERT_SHARD_LOSS, target=1,
            duration_s=10.0))
        engine, injector = _engine(schedule, replicas=1, ep=4)
        injector.advance_to(0.02, engine)
        full_k = injector.domain.top_k
        assert injector.health.effective_top_k == full_k - 1
        scale = (full_k - 1) / full_k
        comps = {"expert_ffn": 0.4, "interconnect": 0.2, "attention": 0.3}
        injector.adjust(0.9, comps)
        assert comps["expert_ffn"] == pytest.approx(0.4 * scale)
        assert comps["interconnect"] == pytest.approx(0.2 * scale)
        assert comps["attention"] == 0.3


class TestRecoveryIntegration:
    def test_killed_requests_reroute_through_the_policy(self):
        event = FaultEvent(time=0.02, kind=FaultKind.DEVICE_LOSS, target=0,
                           duration_s=0.05)
        engine, injector = _engine(_schedule(event), num_devices=4,
                                   arrival_interval=0.0)
        result = engine.run()
        assert injector.counts["requests_killed"] > 0
        assert injector.counts["retries"] == injector.counts["requests_killed"]
        assert result.availability == 1.0  # everyone retried to completion
        retried = [r for r in result.requests if r.fault_retries]
        assert retried
        # victims are pinned by request_id % num_devices
        assert all(r.request_id % 4 == 0 for r in retried)
        assert engine.log.of_type(EventType.RETRY)

    def test_summary_merges_counts_and_health(self):
        engine, injector = _engine(_schedule(FaultEvent(
            time=0.01, kind=FaultKind.LINK_DEGRADE, magnitude=2.0)))
        engine.run()
        summary = injector.summary()
        assert summary["faults_applied"] == 1
        assert summary["health"]["link_slowdown"] == 2.0


class TestDefaultOff:
    def test_no_injector_and_unarmed_injector_are_bit_identical(self):
        from repro.faults.invariants import run_digest

        cfg = ChaosConfig(num_requests=8, input_tokens=128, output_tokens=16,
                          kv_pool_tokens=16_384, fault_rate=0.0)
        engine_unarmed, _ = build_chaos_engine(cfg)
        engine_bare, _ = build_chaos_engine(cfg)
        engine_bare.faults = None
        assert run_digest(engine_unarmed.run()) == run_digest(engine_bare.run())
