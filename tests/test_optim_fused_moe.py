"""Tests for repro.optim.fused_moe."""

from __future__ import annotations

import pytest

from repro.hardware.gpus import H100_SXM
from repro.models.zoo import MIXTRAL_8X7B, QWEN3_0_6B
from repro.optim.fused_moe import (
    compare_fused_unfused,
    moe_kernel_launches_per_layer,
)
from repro.parallel.plan import ParallelPlan


class TestLaunchAccounting:
    def test_fused_constant_launches(self):
        assert moe_kernel_launches_per_layer(MIXTRAL_8X7B, fused=True) == 3

    def test_unfused_scales_with_experts(self):
        n = moe_kernel_launches_per_layer(MIXTRAL_8X7B, fused=False)
        assert n == MIXTRAL_8X7B.moe.num_experts + 2

    def test_dense_model_rejected(self):
        with pytest.raises(ValueError, match="MoE"):
            moe_kernel_launches_per_layer(QWEN3_0_6B, fused=True)


class TestComparison:
    @pytest.fixture(scope="class")
    def cmp(self):
        return compare_fused_unfused(
            MIXTRAL_8X7B, H100_SXM, batch=16, input_tokens=512,
            output_tokens=512, plan=ParallelPlan(tp=4),
        )

    def test_fused_wins(self, cmp):
        assert cmp.speedup > 1.0

    def test_gain_in_paper_band(self, cmp):
        """Paper Fig. 14: roughly 12-20% advantage."""
        assert 5.0 < cmp.gain_percent < 35.0

    def test_gain_percent_consistent(self, cmp):
        assert cmp.gain_percent == pytest.approx(100 * (cmp.speedup - 1))
