"""CLI tests: ``repro report`` and the trend wall-clock section."""

from __future__ import annotations

import json
import shutil
import pathlib

from repro.core.cli import main

ROOT = pathlib.Path(__file__).resolve().parent.parent

# small workload so each report build stays under a second
FAST = ["--requests", "12"]


class TestReportCommand:
    def test_prints_markdown_report(self, capsys):
        assert main(["report", *FAST]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Run report")
        assert "## Device occupancy" in out
        assert "## Utilization (MoE-CAP)" in out
        assert "TP4+EP4" in out

    def test_out_and_html(self, capsys, tmp_path):
        md_path = tmp_path / "report.md"
        html_path = tmp_path / "report.html"
        assert main(["report", *FAST, "--out", str(md_path),
                     "--html", str(html_path)]) == 0
        md = md_path.read_text()
        assert md.startswith("# Run report")
        html = html_path.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "Device occupancy" in html

    def test_check_gate_is_byte_stable(self, capsys):
        assert main(["report", *FAST, "--check"]) == 0
        out = capsys.readouterr().out
        assert "byte-identical" in out

    def test_single_device_plan_degrades(self, capsys):
        assert main(["report", *FAST, "--tp", "1", "--ep", "1"]) == 0
        out = capsys.readouterr().out
        assert "no interconnect links" in out

    def test_bundle_mode_renders_dumped_dir(self, capsys, tmp_path):
        from repro.obs.alerts import (
            AlertMonitor, DeviceSaturationRule, FlightRecorder)
        from repro.obs.harness import clustered_serving_run

        monitor = AlertMonitor(
            rules=[DeviceSaturationRule(threshold=1e-9, min_windows=1)],
            recorder=FlightRecorder(tmp_path, last_n=8))
        clustered_serving_run(num_requests=12, alerts=monitor)
        (bundle,) = monitor.bundles
        assert main(["report", "--bundle", str(bundle)]) == 0
        out = capsys.readouterr().out
        assert "device_saturation" in out
        assert "## Device occupancy" in out
        assert "## Interconnect" in out


class TestTrendWallclock:
    def test_trend_includes_suite_wall_clock_section(self, capsys, tmp_path):
        shutil.copy(ROOT / "BENCH_fig5.json", tmp_path)
        shutil.copy(ROOT / "BENCH_wallclock.json", tmp_path)
        assert main(["bench", "--trend", "--figs", "fig5",
                     "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "## Suite wall clock" in out
        assert "speedup vs serial baseline" in out

    def test_trend_omits_section_without_wallclock_records(self, capsys,
                                                           tmp_path):
        shutil.copy(ROOT / "BENCH_fig5.json", tmp_path)
        assert main(["bench", "--trend", "--figs", "fig5",
                     "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "## Suite wall clock" not in out
