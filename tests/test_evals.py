"""Tests for repro.evals (accuracy tables, agreement tasks, frontier)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evals.accuracy import (
    LLM_TASK_ACCURACY,
    LM_EVAL_TASKS,
    VLM_EVAL_TASKS,
    VLM_TASK_ACCURACY,
    average_accuracy,
    predicted_accuracy,
    task_accuracy,
)
from repro.evals.harness import accuracy_efficiency_frontier, fidelity_sweep
from repro.evals.tasks import AgreementTask, make_task_suite
from repro.hardware.gpus import H100_SXM
from repro.models.zoo import get_model
from repro.moe.model import MoETransformer


class TestAccuracyTables:
    def test_every_llm_covers_every_task(self):
        for model, table in LLM_TASK_ACCURACY.items():
            assert set(table) == set(LM_EVAL_TASKS), model

    def test_every_vlm_covers_every_task(self):
        for model, table in VLM_TASK_ACCURACY.items():
            assert set(table) == set(VLM_EVAL_TASKS), model

    def test_scores_are_percentages(self):
        for table in (*LLM_TASK_ACCURACY.values(), *VLM_TASK_ACCURACY.values()):
            assert all(0 < v <= 100 for v in table.values())

    def test_task_accuracy_lookup(self):
        assert task_accuracy("Mixtral-8x7B", "mmlu") == 70.6
        with pytest.raises(KeyError):
            task_accuracy("Mixtral-8x7B", "gsm8k")
        with pytest.raises(KeyError, match="known"):
            task_accuracy("GPT-5", "mmlu")

    def test_paper_accuracy_ordering(self):
        """Fig. 17: Qwen3-30B/Mixtral lead; OLMoE lowest."""
        avg = {m: average_accuracy(m) for m in LLM_TASK_ACCURACY}
        assert max(avg, key=avg.get) in ("Qwen3-30B-A3B", "Mixtral-8x7B")
        assert min(avg, key=avg.get) == "OLMoE-1B-7B"

    def test_vlm_ladder(self):
        """Fig. 18: accuracy grows Tiny < Small < base."""
        assert (average_accuracy("DeepSeek-VL2-Tiny")
                < average_accuracy("DeepSeek-VL2-Small")
                < average_accuracy("DeepSeek-VL2"))

    def test_predicted_accuracy_reasonable(self):
        pred = predicted_accuracy(get_model("Mixtral-8x7B"))
        assert 50 < pred < 90

    def test_predicted_accuracy_monotone_in_capacity(self):
        small = predicted_accuracy(get_model("OLMoE-1B-7B"))
        big = predicted_accuracy(get_model("Qwen3-30B-A3B"))
        assert big > small


class TestAgreementTasks:
    @pytest.fixture(scope="class")
    def cfg(self):
        return get_model("OLMoE-1B-7B").scaled(1 / 32)

    def test_self_agreement_is_perfect(self, cfg):
        model = MoETransformer(cfg, seed=0, max_positions=64)
        task = AgreementTask("t", batch=8, seq_len=12)
        res = task.evaluate(model, model)
        assert res.top1_agreement == 1.0
        assert res.top5_agreement == 1.0
        assert res.mean_logit_rmse == 0.0

    def test_different_models_disagree(self, cfg):
        a = MoETransformer(cfg, seed=0, max_positions=64)
        b = MoETransformer(cfg, seed=99, max_positions=64)
        res = AgreementTask("t", batch=16, seq_len=12).evaluate(a, b)
        assert res.top1_agreement < 0.5
        assert res.mean_logit_rmse > 0

    def test_quantized_variant_mostly_agrees(self, cfg):
        ref = MoETransformer(cfg, seed=0, max_positions=64)
        q = MoETransformer(cfg, seed=0, max_positions=64, weight_dtype="fp8_e4m3")
        res = AgreementTask("t", batch=24, seq_len=12).evaluate(ref, q)
        assert res.top5_agreement >= res.top1_agreement > 0.4

    def test_vocab_mismatch_rejected(self, cfg, tiny_model):
        a = MoETransformer(cfg, seed=0, max_positions=32)
        b = MoETransformer(tiny_model, seed=0, max_positions=32)
        with pytest.raises(ValueError, match="vocabulary"):
            AgreementTask("t", 2, 4).evaluate(a, b)

    def test_make_task_suite(self):
        suite = make_task_suite(num_tasks=3, seed=5)
        assert len(suite) == 3
        assert len({t.seed for t in suite}) == 3
        with pytest.raises(ValueError):
            make_task_suite(0)


class TestHarness:
    def test_frontier_points(self):
        models = [get_model(n) for n in ("OLMoE-1B-7B", "DeepSeek-V2-Lite")]
        pts = accuracy_efficiency_frontier(models, H100_SXM, 8, 256, 128)
        assert len(pts) == 2
        olmoe = next(p for p in pts if p.model_name == "OLMoE-1B-7B")
        dsv2 = next(p for p in pts if p.model_name == "DeepSeek-V2-Lite")
        assert olmoe.throughput_tok_s > dsv2.throughput_tok_s
        assert olmoe.accuracy < dsv2.accuracy
        assert not olmoe.oom

    def test_fidelity_sweep(self):
        cfg = get_model("OLMoE-1B-7B").scaled(1 / 32)
        ref = MoETransformer(cfg, seed=0, max_positions=64)
        variants = {
            "fp8": MoETransformer(cfg, seed=0, max_positions=64,
                                  weight_dtype="fp8_e4m3"),
            "int4": MoETransformer(cfg, seed=0, max_positions=64,
                                   weight_dtype="int4"),
        }
        tasks = make_task_suite(num_tasks=2, batch=8, seq_len=10)
        results = fidelity_sweep(cfg, variants, reference=ref, tasks=tasks)
        assert set(results) == {"fp8", "int4"}
        fp8_rmse = np.mean([r.mean_logit_rmse for r in results["fp8"]])
        int4_rmse = np.mean([r.mean_logit_rmse for r in results["int4"]])
        assert fp8_rmse < int4_rmse


class TestDegradedTopkAccuracy:
    def test_anchored_at_native_topk(self):
        from repro.evals.accuracy import degraded_topk_accuracy

        model = get_model("OLMoE-1B-7B")
        assert degraded_topk_accuracy(model, model.moe.top_k) == \
            pytest.approx(average_accuracy("OLMoE-1B-7B"))

    def test_monotone_in_topk(self):
        from repro.evals.accuracy import degraded_topk_accuracy

        model = get_model("OLMoE-1B-7B")
        accs = [degraded_topk_accuracy(model, k)
                for k in range(model.moe.top_k, 0, -1)]
        assert all(a > b for a, b in zip(accs, accs[1:]))

    def test_rejects_dense_models_and_bad_k(self):
        from repro.evals.accuracy import degraded_topk_accuracy

        model = get_model("OLMoE-1B-7B")
        with pytest.raises(ValueError):
            degraded_topk_accuracy(model, 0)
        with pytest.raises(ValueError):
            degraded_topk_accuracy(model, model.moe.top_k + 1)
        import dataclasses

        dense = dataclasses.replace(model, moe=None, dense_ffn_dim=1024)
        with pytest.raises(ValueError):
            degraded_topk_accuracy(dense, 1)
