"""Tests for repro.core.metrics (the paper's Eq. 1 and Eq. 2)."""

from __future__ import annotations

import pytest

from repro.core.metrics import (
    GenerationShape,
    InferenceMetrics,
    itl_eq1,
    throughput_eq2,
)


@pytest.fixture
def shape():
    return GenerationShape(batch_size=4, input_tokens=100, output_tokens=50)


class TestShape:
    def test_total_tokens(self, shape):
        assert shape.total_tokens == 4 * 150

    def test_validation(self):
        for bad in (dict(batch_size=0, input_tokens=1, output_tokens=1),
                    dict(batch_size=1, input_tokens=0, output_tokens=1),
                    dict(batch_size=1, input_tokens=1, output_tokens=0)):
            with pytest.raises(ValueError):
                GenerationShape(**bad)


class TestEquations:
    def test_eq2_throughput(self, shape):
        assert throughput_eq2(shape, 2.0) == pytest.approx(300.0)
        with pytest.raises(ValueError):
            throughput_eq2(shape, 0.0)

    def test_eq1_itl(self, shape):
        # (e2e - ttft) / (batch * out - 1)
        assert itl_eq1(shape, 1.0, 3.0) == pytest.approx(2.0 / 199)
        with pytest.raises(ValueError):
            itl_eq1(shape, 2.0, 1.0)

    def test_eq1_degenerate_single_token(self):
        s = GenerationShape(1, 10, 1)
        assert itl_eq1(s, 1.0, 1.0) == 0.0


class TestInferenceMetrics:
    def test_derived_metrics(self, shape):
        m = InferenceMetrics(shape=shape, ttft_s=1.0, e2e_latency_s=3.0)
        assert m.itl_s == pytest.approx(2.0 / 199)
        assert m.itl_per_step_s == pytest.approx(2.0 / 49)
        assert m.throughput_tok_s == pytest.approx(200.0)
        assert m.decode_throughput_tok_s == pytest.approx(4 * 49 / 2.0)
        assert m.samples_per_s == pytest.approx(4 / 3.0)

    def test_validation(self, shape):
        with pytest.raises(ValueError):
            InferenceMetrics(shape=shape, ttft_s=-0.1, e2e_latency_s=1.0)
        with pytest.raises(ValueError):
            InferenceMetrics(shape=shape, ttft_s=2.0, e2e_latency_s=1.0)

    def test_single_output_token(self):
        s = GenerationShape(2, 8, 1)
        m = InferenceMetrics(shape=s, ttft_s=0.5, e2e_latency_s=0.5)
        assert m.itl_per_step_s == 0.0
        assert m.decode_throughput_tok_s == float("inf")
