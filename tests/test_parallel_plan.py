"""Tests for repro.parallel.plan."""

from __future__ import annotations

import pytest

from repro.models.zoo import MIXTRAL_8X7B, OLMOE_1B_7B
from repro.parallel.plan import SINGLE_DEVICE, ParallelPlan


class TestPlan:
    def test_num_devices(self):
        assert ParallelPlan(tp=4, pp=2).num_devices == 8
        assert SINGLE_DEVICE.num_devices == 1

    def test_ep_must_divide_tp(self):
        with pytest.raises(ValueError, match="divide"):
            ParallelPlan(tp=4, ep=3)
        ParallelPlan(tp=4, ep=2)  # ok

    def test_expert_shard_tp(self):
        assert ParallelPlan(tp=4, ep=2).expert_shard_tp == 2
        assert ParallelPlan(tp=4, ep=4).expert_shard_tp == 1
        assert ParallelPlan(tp=4).expert_shard_tp == 4

    def test_degrees_positive(self):
        with pytest.raises(ValueError):
            ParallelPlan(tp=0)
        with pytest.raises(ValueError):
            ParallelPlan(pp=-1)

    def test_label(self):
        assert ParallelPlan(tp=2).label == "TP2"
        assert ParallelPlan(tp=4, pp=2, ep=2).label == "TP4+PP2+EP2"

    def test_validate_head_divisibility(self):
        ParallelPlan(tp=8).validate_for_model(MIXTRAL_8X7B)  # 32 heads
        with pytest.raises(ValueError, match="num_heads"):
            ParallelPlan(tp=3).validate_for_model(MIXTRAL_8X7B)

    def test_validate_pp_bound(self):
        with pytest.raises(ValueError, match="num_layers"):
            ParallelPlan(pp=33).validate_for_model(MIXTRAL_8X7B)

    def test_validate_expert_divisibility(self):
        ParallelPlan(tp=4, ep=4).validate_for_model(MIXTRAL_8X7B)  # 8 experts
        with pytest.raises(ValueError, match="experts"):
            # Mixtral has 8 experts; ep=16 cannot divide them
            ParallelPlan(tp=16, ep=16).validate_for_model(MIXTRAL_8X7B)
