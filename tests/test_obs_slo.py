"""SLO specs, error budgets, burn-rate rules, bucket-edge alignment."""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.obs.harness import reference_serving_run
from repro.obs.instrument import Instrumentation
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    buckets_with_edges,
)
from repro.obs.slo import (
    DEFAULT_SLOS,
    SLO,
    BurnRateRule,
    ErrorBudget,
    SloTracker,
    fault_storm_config,
    run_slo_scenario,
    sre_burn_rules,
)
from repro.serving.request import Request, RequestState, SamplingParams


class TestSloParse:
    def test_latency_spec(self):
        slo = SLO.parse("p99 ttft < 0.5s")
        assert slo == SLO(name="ttft_p99", metric="ttft", target=0.99,
                          threshold_s=0.5)

    def test_fractional_percentile_and_metric_variants(self):
        slo = SLO.parse("p99.9 itl <= 0.05")
        assert slo.name == "itl_p99_9"
        assert slo.target == pytest.approx(0.999)
        assert SLO.parse("p50 e2e < 2 seconds").threshold_s == 2.0

    def test_availability_percent_and_fraction(self):
        assert SLO.parse("availability >= 99.9%").target == pytest.approx(
            0.999)
        assert SLO.parse("availability >= 0.95").target == pytest.approx(0.95)

    def test_describe_round_trips_through_parse(self):
        for slo in DEFAULT_SLOS:
            parsed = SLO.parse(slo.describe())
            assert parsed.describe() == slo.describe()
            assert parsed.target == pytest.approx(slo.target)
            assert (parsed.name, parsed.metric, parsed.threshold_s) == (
                slo.name, slo.metric, slo.threshold_s)

    @pytest.mark.parametrize("bad", [
        "p99 ttft", "ttft < 0.5", "p0 ttft < 1s", "p100 ttft < 1s",
        "availability >= fast", "p99 goodput < 1s",
    ])
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            SLO.parse(bad)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="unknown SLO metric"):
            SLO(name="x", metric="goodput", target=0.9)
        with pytest.raises(ValueError, match="fraction"):
            SLO(name="x", metric="ttft", target=99.0, threshold_s=1.0)
        with pytest.raises(ValueError, match="no threshold"):
            SLO(name="x", metric="availability", target=0.99,
                threshold_s=1.0)
        with pytest.raises(ValueError, match="positive threshold"):
            SLO(name="x", metric="ttft", target=0.99)


class TestSloScoring:
    @pytest.fixture(scope="class")
    def finished(self):
        return reference_serving_run(num_requests=4, input_tokens=64,
                                     output_tokens=8).requests

    def test_finished_requests_meet_loose_objectives(self, finished):
        loose = SLO.parse("p99 ttft < 100s")
        avail = SLO.parse("availability >= 99.9%")
        for req in finished:
            assert loose.is_good(req)
            assert avail.is_good(req)

    def test_tight_latency_threshold_marks_bad(self, finished):
        tight = SLO(name="t", metric="ttft", target=0.99, threshold_s=1e-9)
        assert not any(tight.is_good(req) for req in finished)

    def test_unfinished_request_is_bad_under_every_objective(self):
        req = Request(request_id=0, prompt_tokens=8,
                      sampling=SamplingParams(max_tokens=4))
        for slo in (*DEFAULT_SLOS, SLO.parse("p50 e2e < 100s"),
                    SLO.parse("p50 itl < 100s")):
            assert not slo.is_good(req)


class TestErrorBudget:
    def test_empty_budget_is_untouched(self):
        budget = ErrorBudget(slo="x", objective="", total=0, bad=0,
                             target=0.99)
        assert budget.attainment == 1.0
        assert budget.budget_consumed == 0.0
        assert budget.budget_remaining == 1.0

    def test_budget_math(self):
        # 1% budget on 1000 requests = 10 allowed failures; 5 bad = half
        budget = ErrorBudget(slo="x", objective="", total=1000, bad=5,
                             target=0.99)
        assert budget.attainment == pytest.approx(0.995)
        assert budget.budget_consumed == pytest.approx(0.5)
        assert budget.budget_remaining == pytest.approx(0.5)

    def test_overspent_budget_exceeds_one(self):
        budget = ErrorBudget(slo="x", objective="", total=100, bad=10,
                             target=0.99)
        assert budget.budget_consumed == pytest.approx(10.0)

    def test_to_dict_is_json_serialisable(self):
        blob = json.dumps(ErrorBudget(slo="x", objective="o", total=10,
                                      bad=1, target=0.9).to_dict())
        assert "budget_consumed" in blob


def _finished_request(rid=0):
    req = Request(request_id=rid, prompt_tokens=8,
                  sampling=SamplingParams(max_tokens=2))
    req.first_scheduled_time = 0.001
    req.first_token_time = 0.002
    req.generated_tokens = 2
    req.finish_time = 0.003
    req.state = RequestState.FINISHED
    return req


class TestSloTracker:
    def test_rejects_empty_and_duplicate_slos(self):
        with pytest.raises(ValueError, match="at least one"):
            SloTracker(())
        with pytest.raises(ValueError, match="duplicate"):
            SloTracker((DEFAULT_SLOS[0], DEFAULT_SLOS[0]))

    def test_window_counts_honour_the_cutoff(self):
        tracker = SloTracker((SLO.parse("availability >= 99%"),))
        samples = tracker._samples["availability"]
        samples.extend((float(t), t % 2 == 0) for t in range(1, 11))
        total, bad = tracker.window_counts("availability", now=10.0,
                                           window_s=3.0)
        # closed window [now - window_s, now]: t=7..10, bad at 8 and 10
        assert (total, bad) == (4, 2)
        total, bad = tracker.window_counts("availability", now=10.0,
                                           window_s=100.0)
        assert (total, bad) == (10, 5)

    def test_burn_rate_is_bad_fraction_over_budget_fraction(self):
        slo = SLO.parse("availability >= 99%")  # budget fraction 0.01
        tracker = SloTracker((slo,))
        tracker._samples["availability"].extend(
            [(1.0, False), (2.0, True), (3.0, False), (4.0, True)])
        # 2 bad of 4 in window -> 0.5 / 0.01 = 50x
        assert tracker.burn_rate("availability", now=4.0,
                                 window_s=10.0) == pytest.approx(50.0)
        assert tracker.burn_rate("availability", now=100.0,
                                 window_s=1.0) == 0.0  # empty window

    def test_terminal_requests_update_every_slo(self):
        tracker = SloTracker(DEFAULT_SLOS)
        tracker.on_request_terminal(_finished_request(), now=0.003)
        for slo in DEFAULT_SLOS:
            budget = tracker.budget(slo.name)
            assert (budget.total, budget.bad) == (1, 0)

    def test_report_and_unknown_name(self):
        tracker = SloTracker(DEFAULT_SLOS)
        report = tracker.report(now=1.0)
        assert report["time"] == 1.0
        assert [b["slo"] for b in report["budgets"]] == [
            s.name for s in DEFAULT_SLOS]
        with pytest.raises(KeyError):
            tracker.budget("nope")


class TestBucketAlignment:
    def test_buckets_with_edges_splices_and_dedupes(self):
        out = buckets_with_edges((0.1, 0.2), 0.15, 0.2)
        assert out == (0.1, 0.15, 0.2)
        with pytest.raises(ValueError):
            buckets_with_edges((0.1,), 0.0)

    def test_set_buckets_overrides_future_histograms(self):
        registry = MetricsRegistry()
        registry.set_buckets("ttft_seconds", (0.1, 0.5, 1.0))
        hist = registry.histogram("ttft_seconds")
        assert hist.bounds == (0.1, 0.5, 1.0)

    def test_set_buckets_rebuts_populated_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("ttft_seconds").observe(0.2)
        with pytest.raises(ValueError, match="before the first"):
            registry.set_buckets("ttft_seconds", (0.1, 0.5))

    def test_set_buckets_rejects_non_histograms(self):
        registry = MetricsRegistry()
        registry.counter("requests_total")
        with pytest.raises(TypeError):
            registry.set_buckets("requests_total", (1.0,))

    def test_align_buckets_pins_thresholds_on_exact_edges(self):
        # 0.123 sits inside a default bucket; alignment must make it an
        # exact upper bound so attainment needs no interpolation
        slo = SLO.parse("p99 ttft < 0.123s")
        assert slo.threshold_s not in DEFAULT_LATENCY_BUCKETS
        tracker = SloTracker((slo, DEFAULT_SLOS[1]))
        registry = MetricsRegistry()
        tracker.align_buckets(registry)
        hist = registry.histogram("ttft_seconds")
        assert 0.123 in hist.bounds
        # threshold is now a bucket edge: observations at the threshold
        # land in the <= threshold bucket
        assert hist.bucket_index(0.123) == hist.bounds.index(0.123)


def _engine_stub(tracker, now):
    return SimpleNamespace(
        obs=SimpleNamespace(slo=tracker, active=True), clock=now)


class TestBurnRateRule:
    SLO99 = SLO.parse("availability >= 99%")

    def _tracker(self, samples):
        tracker = SloTracker((self.SLO99,))
        tracker._samples["availability"].extend(samples)
        return tracker

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            BurnRateRule(self.SLO99, long_window_s=0.0, short_window_s=1.0,
                         factor=2.0)
        with pytest.raises(ValueError, match="short window"):
            BurnRateRule(self.SLO99, long_window_s=1.0, short_window_s=2.0,
                         factor=2.0)
        with pytest.raises(ValueError, match="factor"):
            BurnRateRule(self.SLO99, long_window_s=1.0, short_window_s=0.5,
                         factor=0.0)

    def test_fires_when_both_windows_burn(self):
        tracker = self._tracker([(t / 10.0, True) for t in range(8)])
        rule = BurnRateRule(self.SLO99, long_window_s=1.0,
                            short_window_s=0.2, factor=14.4)
        alert = rule.check(_engine_stub(tracker, now=0.7))
        assert alert is not None
        assert alert.rule == rule.name == "slo_burn_availability_1s"
        assert alert.context["long_burn_rate"] >= 14.4
        assert alert.context["short_burn_rate"] >= 14.4
        assert "error budget" in alert.message

    def test_calm_short_window_suppresses_the_page(self):
        # bad burst long ago, all-good recently: long window still burns,
        # short window is calm -> no page (the burn already stopped)
        samples = [(t / 10.0, True) for t in range(6)]
        samples += [(0.9 + t / 100.0, False) for t in range(6)]
        tracker = self._tracker(samples)
        rule = BurnRateRule(self.SLO99, long_window_s=1.0,
                            short_window_s=0.05, factor=14.4)
        assert rule.check(_engine_stub(tracker, now=0.95)) is None

    def test_min_samples_gate(self):
        tracker = self._tracker([(0.1, True), (0.2, True)])
        rule = BurnRateRule(self.SLO99, long_window_s=1.0,
                            short_window_s=0.5, factor=1.0, min_samples=4)
        assert rule.check(_engine_stub(tracker, now=0.3)) is None

    def test_no_tracker_attached_is_silent(self):
        rule = BurnRateRule(self.SLO99, long_window_s=1.0,
                            short_window_s=0.5, factor=1.0)
        engine = SimpleNamespace(obs=None, clock=0.0)
        assert rule.check(engine) is None

    def test_sre_policy_has_fast_and_slow_pages_per_slo(self):
        rules = sre_burn_rules(DEFAULT_SLOS, hour_s=2.0)
        assert len(rules) == 2 * len(DEFAULT_SLOS)
        fast, slow = rules[0], rules[1]
        assert (fast.long_window_s, fast.factor) == (2.0, 14.4)
        assert (slow.long_window_s, slow.factor) == (12.0, 6.0)
        assert fast.short_window_s == pytest.approx(2.0 / 12.0)


class TestSloScenario:
    def test_fault_storm_pages_deterministically(self, tmp_path):
        report = run_slo_scenario(fault_storm_config(),
                                  out_dir=tmp_path / "a")
        replay = run_slo_scenario(fault_storm_config(),
                                  out_dir=tmp_path / "b")
        # the acceptance gate: at least one burn-rate page, replay-stable
        assert report["alerts"]
        assert any(a["rule"].startswith("slo_burn_") for a in report["alerts"])
        normalize = lambda rep: json.dumps(
            {k: v for k, v in rep.items() if k != "bundles"}, sort_keys=True)
        assert normalize(report) == normalize(replay)

    def test_budgets_reflect_the_storm(self):
        report = run_slo_scenario(fault_storm_config())
        budgets = {b["slo"]: b for b in report["budgets"]}
        assert budgets["availability"]["bad"] > 0
        assert budgets["availability"]["budget_consumed"] > 1.0
        assert report["summary"]["fault_retries"] > 0
