"""repro.lint.reporters: JSON schema round-trip, empty output, and
deterministic ordering of repeated runs."""

import json
import pathlib
import textwrap

from repro.lint.core import LintProject, Violation, run_lint
from repro.lint.reporters import (
    JSON_SCHEMA_VERSION,
    render_json,
    render_rule_catalog,
    render_text,
)

REPO = pathlib.Path(__file__).resolve().parents[1]


def _violations():
    return [
        Violation("DET001", "error", "a.py", 3, 1, "wall read",
                  snippet="t = time.time()", end_line=3),
        Violation("UNIT001", "warning", "b.py", 7, 0, "unit mix",
                  snippet="x_s + y_bytes", end_line=8),
    ]


class TestJsonRoundTrip:
    def test_fields_survive_serialization(self):
        vs = _violations()
        doc = json.loads(render_json(vs))
        assert doc["version"] == JSON_SCHEMA_VERSION
        for v, out in zip(vs, doc["violations"]):
            assert out["rule"] == v.rule
            assert out["severity"] == v.severity
            assert out["path"] == v.path
            assert out["line"] == v.line
            assert out["end_line"] == v.end_line
            assert out["col"] == v.col
            assert out["message"] == v.message
            assert out["key"] == v.key()

    def test_summary_counts_match(self):
        doc = json.loads(render_json(_violations()))
        assert doc["summary"] == {
            "total": 2,
            "by_rule": {"DET001": 1, "UNIT001": 1},
            "by_severity": {"error": 1, "warning": 1},
        }

    def test_new_flag_tracks_baseline_diff(self):
        vs = _violations()
        doc = json.loads(render_json(vs, new_keys={vs[1].key()}))
        assert [v["new"] for v in doc["violations"]] == [False, True]


class TestEmptyOutput:
    def test_empty_json(self):
        doc = json.loads(render_json([]))
        assert doc["violations"] == []
        assert doc["summary"] == {"total": 0, "by_rule": {},
                                  "by_severity": {}}

    def test_empty_text(self):
        assert render_text([]) == "simlint: clean — 0 violations"


class TestDeterministicOrdering:
    def _project(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "b.py").write_text(textwrap.dedent("""
            import time
            import random
            t = time.time()
            r = random.random()
        """).lstrip("\n"))
        (pkg / "a.py").write_text("import time\nu = time.monotonic()\n")
        return tmp_path

    def test_repeated_runs_render_identically(self, tmp_path):
        root = self._project(tmp_path)
        runs = [run_lint(root, project=LintProject(root)) for _ in range(3)]
        assert runs[0] == runs[1] == runs[2]
        assert len({render_json(vs) for vs in runs}) == 1
        assert len({render_text(vs) for vs in runs}) == 1

    def test_violations_sorted_by_location(self, tmp_path):
        root = self._project(tmp_path)
        vs = run_lint(root, project=LintProject(root))
        keys = [(v.path, v.line, v.col, v.rule) for v in vs]
        assert keys == sorted(keys)
        assert [v.path for v in vs if v.rule.startswith("DET")][0] \
            == "src/repro/a.py"


class TestCatalog:
    def test_catalog_is_a_markdown_table(self):
        out = render_rule_catalog()
        head, sep, *rows = out.splitlines()
        assert head.startswith("| id |")
        assert set(sep) <= {"|", "-"}
        assert all(r.startswith("| ") for r in rows)
