"""Tests for repro.moe.capacity (expert capacity / token dropping)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.config import MoEConfig
from repro.moe.capacity import apply_capacity, drop_statistics, expert_capacity
from repro.moe.layer import MoELayer
from repro.moe.router import TopKRouter


class TestExpertCapacity:
    def test_formula(self):
        # 64 tokens * top-2 / 8 experts = 16 per expert at factor 1.0
        assert expert_capacity(64, 8, 2, 1.0) == 16
        assert expert_capacity(64, 8, 2, 1.25) == 20

    def test_at_least_one(self):
        assert expert_capacity(1, 64, 1, 0.5) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            expert_capacity(0, 8, 2, 1.0)
        with pytest.raises(ValueError):
            expert_capacity(8, 8, 2, 0.0)


class TestApplyCapacity:
    @pytest.fixture
    def routing(self, rng):
        router = TopKRouter(32, 4, 2, expert_bias_std=1.5, rng=rng)
        x = rng.normal(0, 1, (40, 32)).astype(np.float32)
        return router.route(x)

    def test_capacity_respected(self, routing):
        result = apply_capacity(routing, capacity=5)
        fill = np.zeros(routing.num_experts, dtype=int)
        for t, s in zip(*np.nonzero(result.kept_mask)):
            fill[routing.indices[t, s]] += 1
        assert (fill <= 5).all()

    def test_unlimited_capacity_keeps_all(self, routing):
        result = apply_capacity(routing, capacity=1000)
        assert result.kept_mask.all()
        assert result.num_dropped == 0
        assert result.drop_rate == 0.0

    def test_skewed_router_drops(self, routing):
        result = apply_capacity(routing, capacity=3)
        assert result.num_dropped > 0
        assert 0 < result.drop_rate < 1

    def test_highest_weight_assignments_kept(self, routing):
        """Within one expert, the kept assignments must be the heaviest."""
        result = apply_capacity(routing, capacity=2)
        for e in range(routing.num_experts):
            mask_e = routing.indices == e
            kept_w = routing.weights[mask_e & result.kept_mask]
            dropped_w = routing.weights[mask_e & ~result.kept_mask]
            if len(kept_w) and len(dropped_w):
                assert kept_w.min() >= dropped_w.max() - 1e-6

    def test_dropped_tokens_listed(self, routing):
        result = apply_capacity(routing, capacity=1)
        fully_dropped = result.dropped_tokens()
        for t in fully_dropped:
            assert not result.kept_mask[t].any()

    def test_validation(self, routing):
        with pytest.raises(ValueError):
            apply_capacity(routing, 0)


class TestDropStatistics:
    def test_balanced_router_rarely_drops(self, rng):
        router = TopKRouter(32, 8, 2, rng=rng)
        x = rng.normal(0, 1, (400, 32)).astype(np.float32)
        stats = drop_statistics(router, x, capacity_factor=1.5)
        assert stats["drop_rate"] < 0.05

    def test_skewed_router_drops_more(self, rng):
        balanced = TopKRouter(32, 8, 2, rng=np.random.default_rng(1))
        skewed = TopKRouter(32, 8, 2, expert_bias_std=2.0,
                            rng=np.random.default_rng(1))
        x = rng.normal(0, 1, (400, 32)).astype(np.float32)
        b = drop_statistics(balanced, x, 1.0)
        s = drop_statistics(skewed, x, 1.0)
        assert s["drop_rate"] > b["drop_rate"]

    def test_drop_rate_decreases_with_factor(self, rng):
        router = TopKRouter(32, 8, 2, expert_bias_std=1.0, rng=rng)
        x = rng.normal(0, 1, (400, 32)).astype(np.float32)
        rates = [drop_statistics(router, x, f)["drop_rate"]
                 for f in (0.5, 1.0, 2.0, 4.0)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))
        assert rates[-1] == 0.0


class TestLayerCapacity:
    def test_capacity_changes_output_of_overloaded_layer(self, rng):
        cfg = MoEConfig(num_experts=4, top_k=2, expert_ffn_dim=16)
        layer = MoELayer(32, cfg, rng=rng, expert_bias_std=2.0)
        x = rng.normal(0, 1, (50, 32)).astype(np.float32)
        free = layer(x)
        capped = layer(x, capacity_factor=0.5)
        assert not np.allclose(free.hidden, capped.hidden, atol=1e-5)
        # dropped assignments have zero combine weight
        assert (capped.routing.weights == 0).any()

    def test_generous_capacity_is_identity(self, rng, tiny_moe):
        layer = MoELayer(64, tiny_moe, rng=rng)
        x = rng.normal(0, 1, (20, 64)).astype(np.float32)
        assert np.allclose(layer(x).hidden,
                           layer(x, capacity_factor=100.0).hidden, atol=1e-6)
