"""Tests for repro.core.experiment (sweeps, results)."""

from __future__ import annotations

import pytest

from repro.core.experiment import ExperimentResult, Sweep, sweep
from repro.core.results import ResultTable


class TestSweep:
    def test_cartesian_product(self):
        grid = Sweep({"a": [1, 2], "b": ["x", "y", "z"]})
        points = list(grid)
        assert len(points) == len(grid) == 6
        assert {"a": 1, "b": "x"} in points
        assert {"a": 2, "b": "z"} in points

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            Sweep({})
        with pytest.raises(ValueError):
            Sweep({"a": []})

    def test_sweep_runner_fills_table(self):
        table = ResultTable("t", ("a", "b", "y"))
        sweep(table, {"a": [1, 2], "b": [10]}, lambda a, b: {"y": a * b})
        assert len(table) == 2
        assert table.column("y") == [10, 20]

    def test_sweep_none_marks_infeasible(self):
        table = ResultTable("t", ("a", "y"))
        sweep(table, {"a": [1, 2]}, lambda a: None if a == 2 else {"y": a})
        assert table.rows[1]["y"] is None

    def test_sweep_accepts_plain_mapping(self):
        table = ResultTable("t", ("a", "y"))
        sweep(table, {"a": [3]}, lambda a: {"y": a})
        assert table.rows[0]["y"] == 3

    def test_sweep_drops_extra_keys(self):
        table = ResultTable("t", ("a",))
        sweep(table, {"a": [1]}, lambda a: {"extra": 99})
        assert table.rows[0] == {"a": 1}


class TestExperimentResult:
    def test_table_lookup(self):
        res = ExperimentResult("e1", "title", "claim")
        t = ResultTable("data", ("x",))
        res.tables.append(t)
        assert res.table("data") is t
        with pytest.raises(KeyError, match="have"):
            res.table("missing")

    def test_observe(self):
        res = ExperimentResult("e1", "title", "claim")
        res.observe("finding")
        assert res.observations == ["finding"]
