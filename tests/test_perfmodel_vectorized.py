"""Exact-equivalence tests for the vectorized sweep fast path."""

from __future__ import annotations

import pytest

from repro.experiments.common import (
    metrics_row,
    metrics_rows,
    perf_model,
    vectorize_enabled,
)
from repro.hardware.gpus import H100_SXM
from repro.models.zoo import get_model
from repro.optim.quantization import FP8_CONFIG
from repro.parallel.plan import ParallelPlan
from repro.perfmodel import vectorized as vec
from repro.perfmodel.inference import InferencePerfModel
from repro.perfmodel.phases import StepModel

SHAPES = [(1, 128, 128), (4, 512, 64), (16, 1024, 1), (64, 2048, 256),
          (128, 256, 32)]


def _assert_rows_identical(pm, shapes, images=0):
    fast = metrics_rows(pm, shapes, images=images)
    slow = [metrics_row(pm, b, i, o, images=images) for b, i, o in shapes]
    assert fast == slow  # dict equality — every float bit-identical


class TestExactEquivalence:
    @pytest.mark.parametrize("model", [
        "OLMoE-1B-7B", "Mixtral-8x7B", "DeepSeek-V2-Lite",
        "Qwen1.5-MoE-A2.7B", "Qwen3-30B-A3B", "Phi-3.5-MoE",
    ])
    def test_default_deployments(self, model):
        _assert_rows_identical(perf_model(get_model(model)), SHAPES)

    @pytest.mark.parametrize("plan", [
        ParallelPlan(tp=2), ParallelPlan(tp=4, ep=4), ParallelPlan(tp=4, pp=2),
        ParallelPlan(tp=8, ep=4),
    ])
    def test_parallel_plans(self, plan):
        pm = InferencePerfModel(get_model("Mixtral-8x7B"), H100_SXM, plan=plan)
        _assert_rows_identical(pm, SHAPES)

    def test_quantized(self):
        pm = InferencePerfModel(get_model("Mixtral-8x7B"), H100_SXM,
                                plan=ParallelPlan(tp=2), quant=FP8_CONFIG)
        _assert_rows_identical(pm, SHAPES)

    def test_unfused_moe(self):
        pm = InferencePerfModel(get_model("Qwen1.5-MoE-A2.7B"), H100_SXM,
                                fused_moe=False)
        _assert_rows_identical(pm, SHAPES)

    def test_mla_native(self):
        pm = InferencePerfModel(get_model("DeepSeek-V2-Lite"), H100_SXM,
                                mla_native=True)
        _assert_rows_identical(pm, SHAPES)

    def test_vlm_with_images(self):
        pm = perf_model(get_model("DeepSeek-VL2-Tiny"))
        _assert_rows_identical(pm, [(1, 128, 64), (8, 256, 128)], images=2)

    def test_single_decode_step_edge(self):
        # output_tokens == 1 means no decode phase at all
        pm = perf_model(get_model("OLMoE-1B-7B"))
        _assert_rows_identical(pm, [(2, 64, 1), (2, 64, 2)])

    @pytest.mark.parametrize("model", [
        "OLMoE-1B-7B", "Mixtral-8x7B", "DeepSeek-V2-Lite",
    ])
    def test_step_total_one_matches_scalar_and_batched(self, model):
        """The engine fast path's one-point entry must agree bit-for-bit
        with both the scalar perf model and the batched array pass over
        the same shapes (the polymorphic helpers dispatch float vs array,
        but every arithmetic op is the same IEEE-754 operation)."""
        steps = StepModel(get_model(model), H100_SXM)
        v = vec.VectorizedStepModel(steps)
        shapes = [(1, 1, 1, None), (8, 8, 512, None), (64, 64, 4096, None),
                  (256, 4, 256, 128.5), (2048, 16, 2048, 1024.5)]
        for m, b, kv, att in shapes:
            one = v.step_total_one(m, b, kv, att)
            assert type(one) is float
            batched = v.step_totals([m], [b], [kv],
                                    None if att is None else [att])[0]
            assert one == batched
            if att is None and m == b:
                assert one == steps.decode_step_time(b, kv)
            else:
                scalar = steps.step_breakdown(
                    num_tokens=m, batch=b, kv_len=kv, phase="prefill",
                    attended_len=att if att is not None else kv).total
                assert one == scalar

    def test_step_total_one_validates(self):
        v = vec.VectorizedStepModel(
            StepModel(get_model("OLMoE-1B-7B"), H100_SXM))
        with pytest.raises(ValueError):
            v.step_total_one(0, 1, 64)
        with pytest.raises(ValueError):
            v.step_total_one(1, 0, 64)


class TestFallbacks:
    def test_escape_hatch_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_VECTORIZE", "1")
        assert not vectorize_enabled()
        pm = perf_model(get_model("OLMoE-1B-7B"))
        rows = metrics_rows(pm, SHAPES)
        assert rows == [metrics_row(pm, b, i, o) for b, i, o in SHAPES]

    def test_subclass_not_supported(self):
        class Custom(StepModel):
            pass

        custom = Custom(get_model("OLMoE-1B-7B"), H100_SXM)
        assert not vec.supports(custom)
        with pytest.raises(TypeError):
            vec.VectorizedStepModel(custom)

    def test_instrumented_model_uses_scalar_path(self):
        from repro.obs.instrument import Instrumentation

        obs = Instrumentation.on()
        pm = InferencePerfModel(get_model("OLMoE-1B-7B"), H100_SXM,
                                instrumentation=obs)
        shapes = [(1, 64, 8), (2, 64, 8)]
        metrics_rows(pm, shapes)
        evals = [m for m in obs.metrics.snapshot()["metrics"]
                 if m["name"] == "perfmodel_evaluations_total"]
        assert evals  # the scalar path kept the eval counters alive

    def test_vectorized_returns_python_floats(self):
        # np.float64 leaking into tables would corrupt repr()-based digests
        pm = perf_model(get_model("OLMoE-1B-7B"))
        for row in metrics_rows(pm, SHAPES):
            for key, value in row.items():
                if key != "fits":
                    assert type(value) is float, (key, type(value))
