"""Tests for repro.moe.experts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.moe.experts import ExpertFFN


class TestExpertFFN:
    def test_output_shape(self, rng):
        e = ExpertFFN(32, 16, rng)
        x = rng.normal(0, 1, (5, 32)).astype(np.float32)
        assert e(x).shape == (5, 32)

    def test_empty_input(self, rng):
        e = ExpertFFN(32, 16, rng)
        out = e(np.zeros((0, 32), np.float32))
        assert out.shape == (0, 32)

    def test_gated_param_count(self, rng):
        e = ExpertFFN(32, 16, rng, gated=True)
        assert e.num_params == 3 * 32 * 16

    def test_ungated_param_count(self, rng):
        e = ExpertFFN(32, 16, rng, gated=False)
        assert e.num_params == 2 * 32 * 16
        x = rng.normal(0, 1, (4, 32)).astype(np.float32)
        assert e(x).shape == (4, 32)

    def test_rejects_bad_dims(self, rng):
        with pytest.raises(ValueError):
            ExpertFFN(0, 16, rng)


class TestIntraExpertPruning:
    def test_pruned_dims(self, rng):
        e = ExpertFFN(32, 16, rng)
        p = e.pruned_to_ffn_dim(8)
        assert p.ffn_dim == 8
        assert p.up.weight.shape == (32, 8)
        assert p.down.weight.shape == (8, 32)
        assert p.gate.weight.shape == (32, 8)

    def test_keeps_most_important_channels(self, rng):
        e = ExpertFFN(16, 8, rng)
        importance = np.array([0, 10, 0, 9, 0, 8, 0, 7], dtype=float)
        p = e.pruned_to_ffn_dim(4, importance=importance)
        # channels 1,3,5,7 kept, in index order
        assert np.array_equal(p.down.weight, e.down.weight[[1, 3, 5, 7]])

    def test_full_keep_preserves_function(self, rng):
        e = ExpertFFN(16, 8, rng)
        p = e.pruned_to_ffn_dim(8)
        x = rng.normal(0, 1, (6, 16)).astype(np.float32)
        assert np.allclose(p(x), e(x), atol=1e-6)

    def test_pruning_reduces_output_change_gradually(self, rng):
        """Dropping the least-important half changes outputs less than
        dropping to a single channel."""
        e = ExpertFFN(16, 32, rng)
        x = rng.normal(0, 1, (50, 16)).astype(np.float32)
        full = e(x)
        half = np.abs(e.pruned_to_ffn_dim(16)(x) - full).mean()
        one = np.abs(e.pruned_to_ffn_dim(1)(x) - full).mean()
        assert half < one

    def test_bad_new_dim(self, rng):
        e = ExpertFFN(16, 8, rng)
        with pytest.raises(ValueError):
            e.pruned_to_ffn_dim(0)
        with pytest.raises(ValueError):
            e.pruned_to_ffn_dim(9)

    def test_importance_shape_checked(self, rng):
        e = ExpertFFN(16, 8, rng)
        with pytest.raises(ValueError):
            e.pruned_to_ffn_dim(4, importance=np.ones(7))
