"""Coverage for remaining paths: CS-3 step behavior, default plans,
per-request token timelines, and CLI failure handling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.common import default_plan
from repro.hardware.gpus import CS3, H100_SXM
from repro.models.zoo import LLAMA4_SCOUT_17B_16E, MIXTRAL_8X7B, OLMOE_1B_7B, get_model
from repro.optim.quantization import FP8_CONFIG
from repro.parallel.plan import ParallelPlan
from repro.perfmodel.inference import InferencePerfModel
from repro.perfmodel.phases import StepModel
from repro.serving.engine import ServingEngine
from repro.serving.request import Request, SamplingParams


class TestCS3Behavior:
    def test_decode_flat_in_context(self):
        """The wafer's SRAM bandwidth makes KV reads free — the paper's
        Fig. 16 mechanism at unit level."""
        steps = StepModel(LLAMA4_SCOUT_17B_16E, CS3, plan=ParallelPlan(pp=4),
                          quant=FP8_CONFIG)
        short = steps.decode_step_time(8, 256)
        long = steps.decode_step_time(8, 8192)
        assert long < short * 1.05

    def test_cs3_decode_much_faster_than_h100(self):
        cs3 = StepModel(LLAMA4_SCOUT_17B_16E, CS3, plan=ParallelPlan(pp=4),
                        quant=FP8_CONFIG)
        h100 = StepModel(LLAMA4_SCOUT_17B_16E, H100_SXM, plan=ParallelPlan(tp=4),
                         quant=FP8_CONFIG)
        assert cs3.decode_step_time(1, 2048) < h100.decode_step_time(1, 2048) / 3

    def test_cs3_step_dominated_by_overhead(self):
        bd = StepModel(LLAMA4_SCOUT_17B_16E, CS3, plan=ParallelPlan(pp=4),
                       quant=FP8_CONFIG).step_breakdown(1, 1, 512, "decode")
        assert (bd.overhead + bd.pipeline) > 0.5 * bd.total


class TestDefaultPlan:
    def test_small_model_single_gpu(self):
        assert default_plan(OLMOE_1B_7B).num_devices == 1

    def test_mixtral_fp16_needs_tp(self):
        plan = default_plan(MIXTRAL_8X7B)
        assert plan.tp >= 2

    def test_fp8_shrinks_requirement(self):
        fp16 = default_plan(MIXTRAL_8X7B)
        fp8 = default_plan(MIXTRAL_8X7B, quant=FP8_CONFIG)
        assert fp8.num_devices <= fp16.num_devices


class TestTokenTimeline:
    def test_token_times_match_generated_count(self):
        pm = InferencePerfModel(OLMOE_1B_7B, H100_SXM)
        eng = ServingEngine(pm)
        eng.submit(Request(request_id=0, prompt_tokens=64,
                           sampling=SamplingParams(max_tokens=10)))
        res = eng.run()
        times = res.token_times(0)
        assert len(times) == 10
        assert times == sorted(times)
        assert times[0] == pytest.approx(res.requests[0].first_token_time)
        assert times[-1] == pytest.approx(res.requests[0].finish_time)

    def test_itl_series_positive(self):
        pm = InferencePerfModel(OLMOE_1B_7B, H100_SXM)
        eng = ServingEngine(pm)
        for i in range(4):
            eng.submit(Request(request_id=i, prompt_tokens=64,
                               sampling=SamplingParams(max_tokens=8)))
        res = eng.run()
        gaps = np.diff(res.token_times(2))
        assert (gaps > 0).all()


class TestCLIFailureHandling:
    def test_run_all_reports_failures(self, tmp_path, monkeypatch, capsys):
        import repro.core.cli as cli

        def boom():
            raise RuntimeError("injected failure")

        monkeypatch.setattr(cli, "list_experiments", lambda: ["table1", "broken"])
        real_run = cli.run_experiment

        def run(exp_id):
            if exp_id == "broken":
                boom()
            return real_run(exp_id)

        # run-all executes through the runner's (serial, jobs=1) loop
        monkeypatch.setattr("repro.runner.run_experiment", run)
        rc = cli.main(["run-all", "--out", str(tmp_path)])
        assert rc == 1
        err = capsys.readouterr().err
        assert "broken" in err and "injected failure" in err
        assert (tmp_path / "table1.md").exists()
