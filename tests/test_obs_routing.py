"""Tests for repro.obs.routing (live expert-routing telemetry)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.config import MoEConfig
from repro.models.zoo import get_model
from repro.moe.layer import MoELayer
from repro.moe.router import TopKRouter
from repro.obs.routing import EngineRoutingProbe, RoutingTelemetry


def make_router(num_experts=8, top_k=2, hidden=16, seed=0):
    return TopKRouter(hidden, num_experts, top_k,
                      rng=np.random.default_rng(seed))


class TestRouterSubscription:
    def test_subscriber_sees_every_route(self):
        router = make_router()
        telem = RoutingTelemetry(num_layers=1, num_experts=8)
        telem.subscribe_router(router, layer_idx=0)
        x = np.random.default_rng(1).normal(size=(32, 16)).astype(np.float32)
        routing = router.route(x)
        assert telem.heatmap()[0].sum() == routing.indices.size
        np.testing.assert_array_equal(telem.heatmap()[0],
                                      routing.expert_counts())

    def test_unsubscribe_detaches(self):
        router = make_router()
        telem = RoutingTelemetry(1, 8)
        cb = telem.subscribe_router(router, 0)
        router.unsubscribe(cb)
        x = np.zeros((4, 16), dtype=np.float32)
        router.route(x)
        assert telem.heatmap().sum() == 0

    def test_routing_result_unchanged_by_observers(self):
        x = np.random.default_rng(2).normal(size=(16, 16)).astype(np.float32)
        plain = make_router(seed=3).route(x)
        observed_router = make_router(seed=3)
        RoutingTelemetry(1, 8).subscribe_router(observed_router, 0)
        observed = observed_router.route(x)
        np.testing.assert_array_equal(plain.indices, observed.indices)
        np.testing.assert_allclose(plain.weights, observed.weights)

    def test_dropped_router_has_no_observers(self):
        router = make_router()
        telem = RoutingTelemetry(1, 8)
        telem.subscribe_router(router, 0)
        pruned = router.drop_experts(np.array([0, 1]))
        pruned.route(np.zeros((4, 16), dtype=np.float32))
        assert telem.heatmap().sum() == 0  # observer did not carry over


class TestLayerSubscription:
    def test_moe_layer_streams_routing(self):
        cfg = MoEConfig(num_experts=8, top_k=2, expert_ffn_dim=32)
        layer = MoELayer(16, cfg, rng=np.random.default_rng(0))
        telem = RoutingTelemetry(1, 8)
        telem.subscribe_layer(layer, 0)
        x = np.random.default_rng(1).normal(size=(24, 16)).astype(np.float32)
        out = layer(x)
        assert telem.heatmap()[0].sum() == out.routing.indices.size


class TestTelemetry:
    def test_rolling_imbalance_window(self):
        telem = RoutingTelemetry(1, 4, window=2)
        telem.record_counts(0, np.array([8, 0, 0, 0]))
        assert telem.rolling_imbalance() == pytest.approx(4.0)
        # two balanced batches push the skewed one out of the window
        telem.record_counts(0, np.array([2, 2, 2, 2]))
        telem.record_counts(0, np.array([2, 2, 2, 2]))
        assert telem.rolling_imbalance() == pytest.approx(1.0)
        assert len(telem.imbalance_series) == 3

    def test_rolling_imbalance_empty(self):
        assert RoutingTelemetry(1, 4).rolling_imbalance() == 0.0

    def test_activation_ordering(self):
        telem = RoutingTelemetry(2, 3)
        telem.record_counts(0, np.array([1, 5, 2]))
        telem.record_counts(1, np.array([0, 5, 3]))
        assert telem.activation_ordering() == [1, 2, 0]
        assert telem.activation_ordering(layer_idx=0) == [1, 2, 0]

    def test_heatmap_table_shape(self):
        telem = RoutingTelemetry(2, 4)
        telem.record_counts(0, np.array([1, 2, 3, 4]))
        table = telem.heatmap_table()
        assert table.columns == ("layer", "expert", "count")
        assert len(list(table)) == 8
        capped = telem.heatmap_table(max_experts=2)
        assert len(list(capped)) == 4

    def test_summary_keys(self):
        telem = RoutingTelemetry(1, 4)
        assert telem.summary() == {"activations": 0}
        telem.record_counts(0, np.array([1, 2, 3, 4]))
        summary = telem.summary()
        assert summary["activations"] == 10
        assert summary["peak_activation"] == 4
        assert 0.0 <= summary["gini"] <= 1.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            RoutingTelemetry(1, 4, window=0)


class TestEngineProbe:
    def test_probe_requires_moe_model(self):
        with pytest.raises(ValueError, match="no MoE layers"):
            EngineRoutingProbe(get_model("Qwen3-0.6B"))

    def test_probe_counts_scale_with_subsampling(self):
        model = get_model("OLMoE-1B-7B")
        probe = EngineRoutingProbe(model, rng=np.random.default_rng(0),
                                   max_tokens_per_step=100)
        probe.on_tokens(1000)  # 10x subsampled, counts rescaled
        per_layer = probe.telemetry.heatmap().sum(axis=1)
        expected = 1000 * model.moe.top_k
        assert per_layer.shape[0] == len(probe.routers)
        np.testing.assert_allclose(per_layer, expected, rtol=0.05)
        assert probe.tokens_seen == 1000

    def test_probe_ignores_empty_iterations(self):
        probe = EngineRoutingProbe(get_model("OLMoE-1B-7B"))
        probe.on_tokens(0)
        assert probe.tokens_seen == 0
        assert probe.telemetry.heatmap().sum() == 0
