"""CLI tests for the ``repro fleet`` subcommand."""

from __future__ import annotations

import pytest

from repro.core.cli import main

# Small trace so each CLI run stays well under a second.
FAST = ["--requests", "24"]


def test_fleet_runs_and_reports(capsys):
    assert main(["fleet", *FAST]) == 0
    out = capsys.readouterr().out
    assert "fleet run (3 replicas, policy prefix_affinity" in out
    assert "availability:" in out
    assert "TTFT p50/p99:" in out
    assert "digest:" in out


def test_fleet_smoke_gate_passes(capsys):
    assert main(["fleet", "--smoke"]) == 0
    out = capsys.readouterr().out
    assert "fleet replay bit-identical" in out
    assert "invariants held" in out


def test_fleet_smoke_gate_covers_every_policy(capsys):
    for policy in ("round_robin", "least_kv"):
        assert main(["fleet", "--smoke", "--policy", policy]) == 0
        assert "bit-identical" in capsys.readouterr().out


def test_fleet_quiet_run_has_no_kills(capsys):
    assert main(["fleet", *FAST, "--no-storm", "--no-autoscale",
                 "--policy", "least_kv"]) == 0
    out = capsys.readouterr().out
    assert "kills: 0  heals: 0" in out
    assert "policy least_kv" in out


def test_fleet_replicas_override(capsys):
    assert main(["fleet", *FAST, "--replicas", "5", "--no-storm"]) == 0
    out = capsys.readouterr().out
    assert "fleet run (5 replicas" in out


def test_fleet_seed_changes_the_digest(capsys):
    assert main(["fleet", *FAST, "--no-storm", "--seed", "1"]) == 0
    first = capsys.readouterr().out
    assert main(["fleet", *FAST, "--no-storm", "--seed", "2"]) == 0
    second = capsys.readouterr().out

    def digest(text: str) -> str:
        return next(line for line in text.splitlines()
                    if "digest:" in line).split()[-1]

    assert digest(first) != digest(second)


def test_fleet_rejects_unknown_policy():
    with pytest.raises(SystemExit):
        main(["fleet", "--policy", "shrug"])
