"""Integration tests: every experiment runs and reproduces the paper's shape.

These execute the actual registered experiments (the same code the CLI and
benchmarks run) and assert the qualitative findings the paper reports —
orderings, trend directions, and approximate ratios.
"""

from __future__ import annotations

import pytest

from repro.core.registry import run_experiment


@pytest.fixture(scope="module")
def results():
    """Run each experiment once per test session (they are deterministic)."""
    cache: dict[str, object] = {}

    def get(exp_id: str):
        if exp_id not in cache:
            cache[exp_id] = run_experiment(exp_id)
        return cache[exp_id]

    return get


class TestTable1AndFig1:
    def test_table1_matches_published(self, results):
        table = results("table1").table("architectures")
        for row in table:
            if row["published_total_B"]:
                assert row["total_params_B"] == pytest.approx(
                    row["published_total_B"], rel=0.06
                )

    def test_fig1_moe_dominance(self, results):
        frac = results("fig1").table("moe dominance")
        assert all(r["moe_fraction_total"] > 0.85 for r in frac)


class TestLatencyFigures:
    def test_fig3_olmoe_fastest_ttft(self, results):
        table = results("fig3").table("llm latency")
        ttfts = {r["model"]: r["ttft_s"] for r in table}
        assert min(ttfts, key=ttfts.get) == "OLMoE-1B-7B"
        # paper: DeepSeek-V2-Lite TTFT substantially slower than OLMoE
        assert ttfts["DeepSeek-V2-Lite"] > 1.4 * ttfts["OLMoE-1B-7B"]

    def test_fig4_tiny_fastest(self, results):
        table = results("fig4").table("vlm latency")
        e2e = {r["model"]: r["e2e_s"] for r in table}
        assert min(e2e, key=e2e.get) == "DeepSeek-VL2-Tiny"
        assert max(e2e, key=e2e.get) in ("DeepSeek-VL2", "DeepSeek-VL2-Small")


class TestSweepFigures:
    def test_fig5_throughput_drops_with_topk(self, results):
        table = results("fig5").table("throughput")
        for model in ("DeepSeek-V2-Lite", "Qwen1.5-MoE-A2.7B"):
            for batch in (1, 64):
                sub = table.where(model=model, batch=batch)
                thr = [r["throughput_tok_s"] for r in sub]
                assert all(a >= b * 0.999 for a, b in zip(thr, thr[1:]))

    def test_fig5_batch_scaling_sublinear(self, results):
        table = results("fig5").table("throughput")
        t1 = table.where(model="DeepSeek-V2-Lite", batch=1, top_k=4).rows[0]
        t128 = table.where(model="DeepSeek-V2-Lite", batch=128, top_k=4).rows[0]
        ratio = t128["throughput_tok_s"] / t1["throughput_tok_s"]
        assert 5 < ratio < 128

    def test_fig6_shorter_sequences_win(self, results):
        table = results("fig6").table("throughput")
        for model in ("DeepSeek-V2-Lite", "Qwen1.5-MoE-A2.7B"):
            sub = table.where(model=model, batch=64)
            thr = {r["io_tokens"]: r["throughput_tok_s"] for r in sub}
            assert thr[128] > thr[2048]

    def test_fig6_qwen_beats_deepseek(self, results):
        """Paper: Qwen1.5-MoE exceeds DeepSeek-V2-Lite by 20-30%."""
        table = results("fig6").table("throughput")
        q = table.where(model="Qwen1.5-MoE-A2.7B", batch=64, io_tokens=512).rows[0]
        d = table.where(model="DeepSeek-V2-Lite", batch=64, io_tokens=512).rows[0]
        assert q["throughput_tok_s"] > d["throughput_tok_s"]


class TestHyperparameterFigures:
    def test_fig7_throughput_drops_with_ffn(self, results):
        table = results("fig7").table("hyperparameter grid")
        sub = [r for r in table if r["num_experts"] == 8 and r["top_k"] == 2]
        thr = {r["ffn_dim"]: r["throughput_tok_s"] for r in sub}
        assert thr[1792] > thr[14336]
        # paper: ~50% average decline
        assert thr[14336] < 0.7 * thr[1792]

    def test_fig8_oom_at_large_scale(self, results):
        table = results("fig8").table("hyperparameter grid")
        big = [r for r in table if r["ffn_dim"] == 14336 and r["num_experts"] == 64]
        assert any(r["oom"] for r in big)
        small = [r for r in table if r["ffn_dim"] == 1792]
        assert not any(r["oom"] for r in small)

    def test_fig9_topk_monotone(self, results):
        table = results("fig9").table("hyperparameter grid")
        for f in (1792, 14336):
            for e in (8, 64):
                thr = [r["throughput_tok_s"] for r in table
                       if r["ffn_dim"] == f and r["num_experts"] == e
                       and r["throughput_tok_s"] is not None]
                assert all(a >= b * 0.999 for a, b in zip(thr, thr[1:]))

    def test_fig9_gap_widens_with_ffn(self, results):
        table = results("fig9").table("hyperparameter grid")

        def gap(f):
            sub = {r["top_k"]: r["throughput_tok_s"] for r in table
                   if r["ffn_dim"] == f and r["num_experts"] == 8}
            return sub[1] / sub[8]

        assert gap(14336) > gap(1792)


class TestOptimizationFigures:
    def test_fig10_fp8_wins_everywhere(self, results):
        res = results("fig10")
        assert all(r["fp8_gain_pct"] > 5 for r in res.table("batch sweep"))
        assert all(r["fp8_gain_pct"] > 5 for r in res.table("length sweep"))

    def test_fig10_gain_band(self, results):
        """Paper: 25-30% at the largest batch; stable 20-25% over lengths."""
        batch = results("fig10").table("batch sweep")
        big = batch.where(batch=64).rows[0]["fp8_gain_pct"]
        assert 15 < big < 40

    def test_fig11_50pct_intra_helps_at_high_topk(self, results):
        table = results("fig11").table("pruning sweep")
        rows = table.where(model="OLMoE-1B-7B", kind="intra",
                           ratio_pct=50.0, top_k=8)
        assert rows.rows[0]["gain_vs_unpruned_pct"] > 5

    def test_fig11_intra_beats_inter_in_compute(self, results):
        """Intra pruning cuts per-token compute; inter does not."""
        table = results("fig11").table("pruning sweep")
        intra = table.where(model="OLMoE-1B-7B", kind="intra",
                            ratio_pct=50.0, top_k=8).rows[0]
        inter = table.where(model="OLMoE-1B-7B", kind="inter",
                            ratio_pct=50.0, top_k=8).rows[0]
        assert intra["throughput_tok_s"] >= inter["throughput_tok_s"] * 0.95

    def test_fig12_17b_draft_wins(self, results):
        res = results("fig12")
        k_table = res.table("draft token sweep (input 512)")
        at_k4 = {r["draft"]: r["decode_tok_s"] for r in k_table
                 if r["num_draft_tokens"] == 4}
        assert max(at_k4, key=at_k4.get) == "Qwen3-1.7B"

    def test_fig12_monotone_in_k(self, results):
        k_table = results("fig12").table("draft token sweep (input 512)")
        for draft in ("Qwen3-0.6B", "Qwen3-1.7B", "Qwen3-4B", "Qwen3-8B"):
            thr = [r["decode_tok_s"] for r in k_table.where(draft=draft)]
            assert all(a > b for a, b in zip(thr, thr[1:]))

    def test_fig13_tp_scales_pp_flat(self, results):
        table = results("fig13").table("parallelism scaling")
        for model in ("Mixtral-8x7B", "OLMoE-1B-7B"):
            tp4 = table.where(model=model, strategy="TP", gpus=4).rows[0]
            pp4 = table.where(model=model, strategy="PP", gpus=4).rows[0]
            ep4 = table.where(model=model, strategy="TP+EP", gpus=4).rows[0]
            assert tp4["scaling_vs_1gpu"] > 2.0  # paper: >2x
            assert pp4["scaling_vs_1gpu"] < 1.1  # paper: almost flat
            assert ep4["scaling_vs_1gpu"] < tp4["scaling_vs_1gpu"]

    def test_fig14_fused_gain_band(self, results):
        res = results("fig14")
        gains = res.table("batch sweep").column("gain_pct")
        assert all(5 < g < 35 for g in gains)  # paper: ~15-20%


class TestStudyFigures:
    def test_fig15_molmoe_concentrated(self, results):
        summary = results("fig15").table("activation summary")
        rows = {r["model"]: r for r in summary}
        molmo = rows["MolmoE-1B"]
        deepseek_max_peak = max(r["peak_activation"] for m, r in rows.items()
                                if m != "MolmoE-1B")
        assert molmo["peak_activation"] > 2 * deepseek_max_peak
        # magnitudes near the paper's: ~1M vs ~290K
        assert 5e5 < molmo["peak_activation"] < 2e6
        assert 1.5e5 < deepseek_max_peak < 6e5

    def test_fig16_cs3_flatter_and_faster(self, results):
        table = results("fig16").table("latency/throughput vs length")
        h100 = {r["io_tokens"]: r for r in table.where(hardware="H100")}
        cs3 = {r["io_tokens"]: r for r in table.where(hardware="CS-3")}
        # CS-3 faster at every length
        assert all(cs3[n]["e2e_s"] < h100[n]["e2e_s"] for n in h100)
        # H100 per-step latency grows more with context than CS-3's
        h_growth = h100[2048]["itl_per_step_ms"] / h100[128]["itl_per_step_ms"]
        c_growth = cs3[2048]["itl_per_step_ms"] / cs3[128]["itl_per_step_ms"]
        assert h_growth > c_growth

    def test_fig17_frontier(self, results):
        table = results("fig17").table("frontier")
        rows = {r["model"]: r for r in table}
        thr = {m: r["throughput_tok_s"] for m, r in rows.items()}
        acc = {m: r["accuracy_pct"] for m, r in rows.items()}
        assert max(thr, key=thr.get) == "OLMoE-1B-7B"
        assert min(thr, key=thr.get) == "Phi-3.5-MoE"
        assert max(acc, key=acc.get) in ("Qwen3-30B-A3B", "Mixtral-8x7B")
        assert min(acc, key=acc.get) == "OLMoE-1B-7B"

    def test_fig18_ladder(self, results):
        table = results("fig18").table("frontier")
        rows = {r["model"]: r for r in table}
        assert (rows["DeepSeek-VL2-Tiny"]["throughput_tok_s"]
                > rows["DeepSeek-VL2-Small"]["throughput_tok_s"]
                > rows["DeepSeek-VL2"]["throughput_tok_s"])
        assert (rows["DeepSeek-VL2-Tiny"]["accuracy_pct"]
                < rows["DeepSeek-VL2-Small"]["accuracy_pct"]
                < rows["DeepSeek-VL2"]["accuracy_pct"])


class TestAblations:
    def test_coverage_matters_most_at_small_batch(self, results):
        table = results("ablation_coverage").table("decode step time")
        over = {r["batch"]: r["overstatement_pct"] for r in table}
        assert over[1] > over[256]
        assert over[1] > 20

    def test_efficiency_curve_matters_at_small_batch(self, results):
        table = results("ablation_efficiency").table("prefill time")
        under = {r["batch"]: r["flat_understates_pct"] for r in table}
        assert under[1] > under[64]

    def test_engine_agrees_with_closed_form(self, results):
        table = results("ablation_engine").table("agreement")
        assert all(abs(r["delta_pct"]) < 5 for r in table)

    def test_ep_imbalance_analytic_tracks_mc(self, results):
        table = results("ablation_ep_imbalance").table("imbalance factor")
        assert all(r["abs_error"] < 0.3 for r in table)
