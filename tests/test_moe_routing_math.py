"""Tests for repro.moe.routing_math."""

from __future__ import annotations

import numpy as np
import pytest

from repro.moe.routing_math import expected_expert_coverage, expected_group_imbalance


class TestCoverage:
    def test_zero_tokens(self):
        assert expected_expert_coverage(8, 2, 0) == 0.0

    def test_one_token_covers_top_k(self):
        assert expected_expert_coverage(64, 6, 1) == pytest.approx(6.0)

    def test_saturates_to_all_experts(self):
        assert expected_expert_coverage(8, 2, 10_000) == pytest.approx(8.0)

    def test_monotone_in_tokens(self):
        vals = [expected_expert_coverage(64, 4, m) for m in (1, 4, 16, 64, 256)]
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_monotone_in_top_k(self):
        vals = [expected_expert_coverage(64, k, 10) for k in (1, 2, 4, 8)]
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_never_exceeds_expert_count(self):
        for m in (1, 10, 100, 10_000):
            assert expected_expert_coverage(16, 4, m) <= 16

    def test_matches_monte_carlo(self):
        """Closed form vs simulation, uniform routing."""
        rng = np.random.default_rng(0)
        e, k, m = 32, 4, 12
        covs = []
        for _ in range(2000):
            picks = set()
            for _ in range(m):
                picks.update(rng.choice(e, size=k, replace=False).tolist())
            covs.append(len(picks))
        assert np.mean(covs) == pytest.approx(expected_expert_coverage(e, k, m), rel=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_expert_coverage(0, 1, 5)
        with pytest.raises(ValueError):
            expected_expert_coverage(8, 9, 5)
        with pytest.raises(ValueError):
            expected_expert_coverage(8, 2, -1)


class TestImbalance:
    def test_single_group(self):
        assert expected_group_imbalance(1, 100) == 1.0

    def test_zero_assignments(self):
        assert expected_group_imbalance(4, 0) == 1.0

    def test_decreases_with_load(self):
        vals = [expected_group_imbalance(4, t) for t in (8, 64, 512, 4096)]
        assert all(a > b for a, b in zip(vals, vals[1:]))
        assert vals[-1] < 1.1

    def test_increases_with_groups(self):
        assert expected_group_imbalance(8, 64) > expected_group_imbalance(2, 64)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_group_imbalance(0, 10)
        with pytest.raises(ValueError):
            expected_group_imbalance(2, -1)
