"""Integration tests for the extension experiments."""

from __future__ import annotations

import pytest

from repro.core.registry import list_experiments, run_experiment


@pytest.fixture(scope="module")
def results():
    cache: dict[str, object] = {}

    def get(exp_id: str):
        if exp_id not in cache:
            cache[exp_id] = run_experiment(exp_id)
        return cache[exp_id]

    return get


def test_extensions_registered():
    ids = set(list_experiments())
    assert {"ext_a100", "ext_kv_quant", "ext_serving_load",
            "ext_spec_batch"} <= ids


class TestA100:
    def test_h100_faster_everywhere(self, results):
        table = results("ext_a100").table("cross-hardware")
        for model in ("OLMoE-1B-7B", "DeepSeek-V2-Lite", "Qwen3-30B-A3B"):
            h = table.where(model=model, hardware="H100", quant="fp16").rows[0]
            a = table.where(model=model, hardware="A100", quant="fp16").rows[0]
            assert h["throughput_tok_s"] > 1.3 * a["throughput_tok_s"]
            assert h["tokens_per_joule"] > a["tokens_per_joule"]

    def test_fp8_only_pays_on_h100(self, results):
        table = results("ext_a100").table("cross-hardware")
        h16 = table.where(model="Qwen3-30B-A3B", hardware="H100", quant="fp16").rows[0]
        h8 = table.where(model="Qwen3-30B-A3B", hardware="H100", quant="fp8").rows[0]
        a16 = table.where(model="Qwen3-30B-A3B", hardware="A100", quant="fp16").rows[0]
        a8 = table.where(model="Qwen3-30B-A3B", hardware="A100", quant="fp8").rows[0]
        h_gain = h8["throughput_tok_s"] / h16["throughput_tok_s"]
        a_gain = a8["throughput_tok_s"] / a16["throughput_tok_s"]
        assert h_gain > 1.1
        assert a_gain < h_gain


class TestKVQuant:
    def test_fp8_kv_halves_kv_and_doubles_capacity(self, results):
        table = results("ext_kv_quant").table("kv quantization")
        for model in ("OLMoE-1B-7B", "Qwen1.5-MoE-A2.7B"):
            fp8 = table.where(model=model, config="fp8").rows[0]
            kv8 = table.where(model=model, config="fp8+fp8kv").rows[0]
            assert kv8["kv_gb_per_1k_tokens"] == pytest.approx(
                fp8["kv_gb_per_1k_tokens"] / 2
            )
            assert kv8["max_context_tokens"] > 1.8 * fp8["max_context_tokens"]
            assert kv8["throughput_tok_s"] > fp8["throughput_tok_s"]


class TestServingLoad:
    def test_latency_grows_with_load(self, results):
        table = results("ext_serving_load").table("load sweep")
        rows = {r["arrival_rate_rps"]: r for r in table}
        assert rows[128.0]["p99_ttft_s"] > rows[2.0]["p99_ttft_s"]
        assert rows[128.0]["mean_decode_batch"] > rows[2.0]["mean_decode_batch"]

    def test_throughput_saturates(self, results):
        table = results("ext_serving_load").table("load sweep")
        thr = [r["throughput_tok_s"] for r in table]
        # saturation: the last doubling of load buys <2x throughput
        assert thr[-1] < 2 * thr[-2]


class TestSpecBatch:
    def test_speedup_grows_with_batch_for_moe(self, results):
        table = results("ext_spec_batch").table("speculation vs batching")
        speed = {r["batch"]: r["speedup"] for r in table}
        assert speed[64] > speed[1]
        assert speed[64] > 1.0  # speculation pays once coverage saturates


class TestMultinode:
    def test_node_boundary_penalty(self, results):
        table = results("ext_multinode").table("multinode dispatch")
        intra = table.where(ep=8).rows[0]
        inter = table.where(ep=16).rows[0]
        assert inter["alltoall_ms"] > 1.5 * intra["alltoall_ms"]
        assert inter["nodes"] == 2

    def test_dispatch_grows_with_ep(self, results):
        table = results("ext_multinode").table("multinode dispatch")
        ms = [r["alltoall_ms"] for r in table]
        assert ms[-1] > ms[0]


class TestOffload:
    def test_offload_cliff(self, results):
        table = results("ext_offload").table("offload sweep")
        full = table.where(hot_fraction=1.0, policy="random").rows[0]
        half = table.where(hot_fraction=0.5, policy="random").rows[0]
        assert half["decode_tok_s"] < 0.2 * full["decode_tok_s"]

    def test_frequency_caching_helps(self, results):
        table = results("ext_offload").table("offload sweep")
        for hot in (0.75, 0.5, 0.25):
            rand = table.where(hot_fraction=hot, policy="random").rows[0]
            freq = table.where(hot_fraction=hot, policy="frequency").rows[0]
            assert freq["decode_tok_s"] >= rand["decode_tok_s"]
            assert freq["hit_fraction"] >= rand["hit_fraction"]


class TestPlacement:
    def test_molmoe_improves_deepseek_doesnt_need_it(self, results):
        table = results("ext_placement").table("placement comparison")
        molmo = table.where(model="MolmoE-1B", ep=8).rows[0]
        ds = table.where(model="DeepSeek-VL2-Tiny", ep=8).rows[0]
        assert molmo["improvement_pct"] > 5
        assert molmo["optimized_imbalance"] < 1.05
        assert ds["default_imbalance"] < molmo["default_imbalance"]


class TestCapacity:
    def test_skew_drops_more(self, results):
        table = results("ext_capacity").table("capacity sweep")
        for cf in (1.0, 1.25, 1.5, 2.0):
            bal = table.where(router="balanced", capacity_factor=cf).rows[0]
            skw = table.where(router="skewed", capacity_factor=cf).rows[0]
            assert skw["drop_rate_pct"] >= bal["drop_rate_pct"]

    def test_drop_rate_decreases_with_capacity(self, results):
        table = results("ext_capacity").table("capacity sweep")
        for router in ("balanced", "skewed"):
            rates = [r["drop_rate_pct"] for r in table.where(router=router)]
            assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_balanced_rarely_drops_at_generous_capacity(self, results):
        table = results("ext_capacity").table("capacity sweep")
        bal = table.where(router="balanced", capacity_factor=2.0).rows[0]
        assert bal["drop_rate_pct"] < 1.0


class TestPrefixCacheExperiment:
    def test_caching_cuts_ttft(self, results):
        table = results("ext_prefix_cache").table("prefix caching")
        for prefix in (256, 1024, 4096):
            off = table.where(shared_prefix_tokens=prefix, caching="off").rows[0]
            on = table.where(shared_prefix_tokens=prefix, caching="on").rows[0]
            assert on["mean_ttft_ms"] < off["mean_ttft_ms"]
            assert on["kv_hit_rate_pct"] > 50
            assert off["kv_hit_rate_pct"] == 0

    def test_benefit_grows_with_prefix_length(self, results):
        table = results("ext_prefix_cache").table("prefix caching")

        def speedup(prefix):
            off = table.where(shared_prefix_tokens=prefix, caching="off").rows[0]
            on = table.where(shared_prefix_tokens=prefix, caching="on").rows[0]
            return off["mean_ttft_ms"] / on["mean_ttft_ms"]

        assert speedup(4096) > speedup(256)
