"""Tests for repro.moe.model (the functional transformer)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.zoo import get_model
from repro.moe.model import MoETransformer


@pytest.fixture(scope="module")
def tiny_cfg():
    return get_model("OLMoE-1B-7B").scaled(1 / 32)


@pytest.fixture(scope="module")
def model(tiny_cfg):
    return MoETransformer(tiny_cfg, seed=7, max_positions=64)


class TestForward:
    def test_logits_shape(self, model, tiny_cfg, rng):
        ids = rng.integers(0, tiny_cfg.vocab_size, size=(2, 5))
        logits = model(ids)
        assert logits.shape == (2, 5, tiny_cfg.vocab_size)
        assert np.isfinite(logits).all()

    def test_rejects_1d_input(self, model):
        with pytest.raises(ValueError):
            model(np.zeros(5, dtype=np.int64))

    def test_rejects_out_of_vocab(self, model, tiny_cfg):
        with pytest.raises(ValueError, match="vocabulary"):
            model(np.array([[tiny_cfg.vocab_size]]))

    def test_deterministic_by_seed(self, tiny_cfg, rng):
        ids = rng.integers(0, tiny_cfg.vocab_size, size=(1, 4))
        a = MoETransformer(tiny_cfg, seed=3, max_positions=32)(ids)
        b = MoETransformer(tiny_cfg, seed=3, max_positions=32)(ids)
        assert np.array_equal(a, b)

    def test_fused_and_unfused_agree(self, model, tiny_cfg, rng):
        ids = rng.integers(0, tiny_cfg.vocab_size, size=(2, 6))
        assert np.allclose(model(ids, mode="fused"), model(ids, mode="unfused"),
                           atol=1e-4)

    def test_cached_matches_uncached(self, model, tiny_cfg, rng):
        ids = rng.integers(0, tiny_cfg.vocab_size, size=(2, 8))
        full = model(ids)
        caches = model.new_caches(2, 16)
        part1 = model.forward(ids[:, :5], caches)
        part2 = model.forward(ids[:, 5:], caches)
        assert np.allclose(part1, full[:, :5], atol=1e-4)
        assert np.allclose(part2, full[:, 5:], atol=1e-4)

    def test_cache_count_checked(self, model, tiny_cfg, rng):
        ids = rng.integers(0, tiny_cfg.vocab_size, size=(1, 3))
        with pytest.raises(ValueError, match="cache"):
            model.forward(ids, caches=[])


class TestGeneration:
    def test_greedy_shapes(self, model, tiny_cfg, rng):
        prompt = rng.integers(0, tiny_cfg.vocab_size, size=(3, 4))
        out = model.generate_greedy(prompt, 5)
        assert out.shape == (3, 5)
        assert (out >= 0).all() and (out < tiny_cfg.vocab_size).all()

    def test_greedy_is_deterministic(self, model, tiny_cfg, rng):
        prompt = rng.integers(0, tiny_cfg.vocab_size, size=(1, 4))
        assert np.array_equal(model.generate_greedy(prompt, 4),
                              model.generate_greedy(prompt, 4))

    def test_greedy_matches_full_recompute(self, model, tiny_cfg, rng):
        """KV-cached generation must equal argmax over full re-forwarding."""
        prompt = rng.integers(0, tiny_cfg.vocab_size, size=(1, 4))
        gen = model.generate_greedy(prompt, 3)
        seq = prompt.copy()
        for t in range(3):
            logits = model(seq)
            nxt = int(np.argmax(logits[0, -1]))
            assert nxt == gen[0, t]
            seq = np.concatenate([seq, [[nxt]]], axis=1)

    def test_budget_overflow_rejected(self, model, tiny_cfg):
        prompt = np.zeros((1, 60), dtype=np.int64)
        with pytest.raises(ValueError, match="max_positions"):
            model.generate_greedy(prompt, 10)

    def test_bad_args(self, model):
        with pytest.raises(ValueError):
            model.generate_greedy(np.zeros(3, dtype=np.int64), 2)
        with pytest.raises(ValueError):
            model.generate_greedy(np.zeros((1, 3), dtype=np.int64), 0)


class TestTracking:
    def test_activation_tracker_records(self, tiny_cfg, rng):
        m = MoETransformer(tiny_cfg, seed=1, max_positions=32, track_activations=True)
        ids = rng.integers(0, tiny_cfg.vocab_size, size=(2, 6))
        m(ids)
        hm = m.tracker.heatmap()
        assert hm.shape == (tiny_cfg.num_moe_layers, tiny_cfg.moe.num_experts)
        assert hm.sum() == tiny_cfg.num_moe_layers * 12 * tiny_cfg.moe.top_k

    def test_dense_model_runs(self, tiny_dense_model, rng):
        m = MoETransformer(tiny_dense_model, seed=0, max_positions=16)
        ids = rng.integers(0, tiny_dense_model.vocab_size, size=(1, 4))
        assert m(ids).shape == (1, 4, tiny_dense_model.vocab_size)

    def test_tied_embeddings(self, tiny_dense_model, rng):
        import dataclasses

        cfg = dataclasses.replace(tiny_dense_model, tie_embeddings=True)
        m = MoETransformer(cfg, seed=0, max_positions=16)
        assert np.array_equal(m.lm_head.weight, m.embedding.T)
