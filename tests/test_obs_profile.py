"""Tests for repro.obs.profile — cost attribution and roofline advice."""

from __future__ import annotations

import pytest

from repro.obs.profile import (
    COMPONENTS_TRACK,
    CostProfile,
    component_bound,
    profile_serving_run,
)


def _stream():
    """Hand-built B/E stream: root [0,100]us with child [10,40]us on one
    track, plus a second track with a lone [0,5]us span."""
    return [
        {"ph": "M", "name": "thread_name", "tid": 1,
         "args": {"name": "components"}},
        {"ph": "M", "name": "thread_name", "tid": 2, "args": {"name": "aux"}},
        {"ph": "B", "name": "decode", "tid": 1, "ts": 0.0},
        {"ph": "B", "name": "expert_ffn", "tid": 1, "ts": 10.0},
        {"ph": "E", "name": "expert_ffn", "tid": 1, "ts": 40.0},
        {"ph": "E", "name": "decode", "tid": 1, "ts": 100.0},
        {"ph": "B", "name": "io", "tid": 2, "ts": 0.0},
        {"ph": "E", "name": "io", "tid": 2, "ts": 5.0},
    ]


class TestFold:
    def test_inclusive_exclusive(self):
        prof = CostProfile.from_events(_stream())
        root = prof.paths[("components", "decode")]
        child = prof.paths[("components", "decode", "expert_ffn")]
        assert root.inclusive_s == pytest.approx(100e-6)
        assert root.exclusive_s == pytest.approx(70e-6)
        assert child.inclusive_s == child.exclusive_s == pytest.approx(30e-6)
        assert root.count == child.count == 1

    def test_tracks_are_separate(self):
        prof = CostProfile.from_events(_stream())
        assert prof.tracks() == ["aux", "components"]
        assert prof.total_s("aux") == pytest.approx(5e-6)
        assert prof.total_s() == pytest.approx(100e-6)

    def test_repeated_paths_aggregate(self):
        events = _stream() + [
            {"ph": "B", "name": "decode", "tid": 1, "ts": 200.0},
            {"ph": "E", "name": "decode", "tid": 1, "ts": 250.0},
        ]
        prof = CostProfile.from_events(events)
        root = prof.paths[("components", "decode")]
        assert root.count == 2
        assert root.inclusive_s == pytest.approx(150e-6)

    def test_stray_end_ignored(self):
        events = [{"ph": "E", "name": "x", "tid": 9, "ts": 1.0}]
        assert CostProfile.from_events(events).paths == {}

    def test_folded_format(self):
        text = CostProfile.from_events(_stream()).folded()
        lines = dict(
            line.rsplit(" ", 1) for line in text.strip().splitlines()
        )
        assert float(lines["components;decode;expert_ffn"]) == \
            pytest.approx(30.0)
        assert float(lines["components;decode"]) == pytest.approx(70.0)

    def test_folded_track_filter(self):
        text = CostProfile.from_events(_stream()).folded(tracks=["aux"])
        assert "components" not in text and "aux;io" in text


class TestServingProfile:
    @pytest.fixture(scope="class")
    def report(self):
        return profile_serving_run(num_requests=4, input_tokens=128,
                                   output_tokens=16)

    def test_component_totals_sum_to_simulated_time(self, report):
        total = sum(
            agg.exclusive_s
            for path, agg in report.profile.paths.items()
            if path[0] == COMPONENTS_TRACK
        )
        assert total == pytest.approx(report.result.makespan, rel=1e-9)

    def test_folded_file_totals_sum_to_simulated_time(self, report):
        # parse the *exported text* back — the acceptance-criterion check
        leaf_us = 0.0
        for line in report.folded().strip().splitlines():
            path, value = line.rsplit(" ", 1)
            if path.startswith(f"{COMPONENTS_TRACK};"):
                leaf_us += float(value)
        assert leaf_us * 1e-6 == pytest.approx(report.result.makespan,
                                               rel=1e-4)

    def test_table_has_phase_component_rows(self, report):
        table = report.table()
        assert table.columns == ("phase", "component", "inclusive_s",
                                 "exclusive_s", "count", "share")
        pairs = {(r["phase"], r["component"]) for r in table.rows}
        assert ("decode", "expert_ffn") in pairs
        assert ("prefill", "attention") in pairs
        shares = sum(r["share"] for r in table.rows
                     if r["component"] != "(all)")
        assert shares == pytest.approx(1.0, rel=1e-6)

    def test_advice_ranked_by_saving(self, report):
        savings = [r["saving_s"] for r in report.advice.rows]
        assert savings == sorted(savings, reverse=True)
        top = report.advice.rows[0]
        # the reference MoE decode run is dominated by the expert FFN
        assert top["component"] == "expert_ffn"
        assert top["bound"] in ("memory", "compute")
        assert top["saving_s"] == pytest.approx(0.1 * top["exclusive_s"])

    def test_bit_identical_to_uninstrumented(self, report):
        from repro.obs.harness import reference_serving_run

        bare = reference_serving_run(num_requests=4, input_tokens=128,
                                     output_tokens=16)
        assert bare.makespan == report.result.makespan


class TestBoundClassification:
    def test_decode_expert_ffn_is_memory_bound(self):
        from repro.hardware.gpus import H100_SXM
        from repro.models.zoo import get_model
        from repro.perfmodel.inference import InferencePerfModel

        pm = InferencePerfModel(get_model("OLMoE-1B-7B"), H100_SXM)
        assert component_bound(pm, "expert_ffn", 4, 4, 512,
                               "decode") == "memory"
        # huge prefill GEMMs saturate compute instead
        assert component_bound(pm, "attention", 16384, 16, 1024,
                               "prefill") == "compute"
        assert component_bound(pm, "interconnect", 4, 4, 512,
                               "decode") == "latency"
