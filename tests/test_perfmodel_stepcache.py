"""Tests for the exact step-breakdown memo table (repro.perfmodel.stepcache)."""

from __future__ import annotations

import pytest

from repro.hardware.gpus import H100_SXM
from repro.models.zoo import get_model
from repro.parallel.plan import ParallelPlan
from repro.perfmodel import stepcache
from repro.perfmodel.phases import StepModel
from repro.serving.engine import ServingEngine
from repro.perfmodel.inference import InferencePerfModel
from repro.workloads.generator import FixedShapeWorkload


@pytest.fixture
def fresh_cache():
    """Run against a clean, enabled global cache; restore stats after."""
    stepcache.configure(enabled=True)
    stepcache.clear()
    stepcache.GLOBAL.reset_stats()
    yield stepcache.GLOBAL
    stepcache.configure(enabled=True)
    stepcache.clear()
    stepcache.GLOBAL.reset_stats()


def _steps(model_name: str = "OLMoE-1B-7B", **kwargs) -> StepModel:
    return StepModel(get_model(model_name), H100_SXM, **kwargs)


class TestCacheMechanics:
    def test_repeat_lookup_hits(self, fresh_cache):
        steps = _steps()
        first = steps.prefill_time(4, 256)
        hits0, misses0 = fresh_cache.stats.hits, fresh_cache.stats.misses
        again = steps.prefill_time(4, 256)
        assert again == first
        assert fresh_cache.stats.hits == hits0 + 1
        assert fresh_cache.stats.misses == misses0

    def test_distinct_shapes_miss(self, fresh_cache):
        steps = _steps()
        steps.decode_step_time(1, 128)
        steps.decode_step_time(1, 129)
        steps.decode_step_time(2, 128)
        assert steps.cache_stats().misses == 3
        assert steps.cache_stats().hits == 0

    def test_two_models_do_not_collide(self, fresh_cache):
        a = _steps("OLMoE-1B-7B")
        b = _steps("Mixtral-8x7B")
        assert a.decode_step_time(1, 256) != b.decode_step_time(1, 256)
        assert stepcache.stats().hits == 0

    def test_same_setup_shares_entries(self, fresh_cache):
        a = _steps()
        b = _steps()  # separate StepModel, identical frozen setup
        a.decode_step_time(2, 512)
        b.decode_step_time(2, 512)
        assert stepcache.stats().hits == 1

    def test_subclass_isolated_from_base(self, fresh_cache):
        class Doubled(StepModel):
            def _component_time(self, *args, **kwargs):
                return 2.0 * super()._component_time(*args, **kwargs)

        base = _steps()
        doubled = Doubled(get_model("OLMoE-1B-7B"), H100_SXM)
        t_base = base.decode_step_time(1, 256)
        t_doubled = doubled.decode_step_time(1, 256)
        assert t_doubled > t_base  # would be equal if keys collided
        assert stepcache.stats().hits == 0

    def test_plan_quant_flags_key_the_cache(self, fresh_cache):
        _steps().decode_step_time(1, 256)
        _steps(plan=ParallelPlan(tp=2)).decode_step_time(1, 256)
        _steps(fused_moe=False).decode_step_time(1, 256)
        assert stepcache.stats().misses == 3
        assert stepcache.stats().hits == 0

    def test_eviction_clears_wholesale(self, fresh_cache):
        cache = stepcache.GLOBAL
        old_max = cache.max_entries
        try:
            stepcache.configure(max_entries=4)
            steps = _steps()
            for ctx in range(128, 128 + 6):
                steps.decode_step_time(1, ctx)
            assert len(cache) <= 4
            assert cache.stats.clears >= 1
        finally:
            stepcache.configure(max_entries=old_max)

    def test_disabled_cache_stores_nothing(self, fresh_cache):
        stepcache.configure(enabled=False)
        steps = _steps()
        steps.prefill_time(1, 128)
        steps.prefill_time(1, 128)
        assert len(stepcache.GLOBAL) == 0
        assert stepcache.stats().lookups == 0

    def test_freeze_handles_nested_configs(self):
        model = get_model("DeepSeek-V2-Lite")
        key = stepcache.freeze(model)
        assert hash(key) == hash(stepcache.freeze(get_model("DeepSeek-V2-Lite")))
        assert hash(key) != hash(stepcache.freeze(get_model("Mixtral-8x7B")))


class TestEngineEquivalence:
    def _run(self) -> list[float]:
        pm = InferencePerfModel(get_model("OLMoE-1B-7B"), H100_SXM)
        engine = ServingEngine(pm)
        for req in FixedShapeWorkload(batch_size=6, input_tokens=96,
                                      output_tokens=24).requests():
            engine.submit(req)
        result = engine.run()
        return sorted(r.finish_time for r in result.requests)

    def test_cache_on_off_bit_identical(self, fresh_cache):
        on = self._run()
        stepcache.configure(enabled=False)
        off = self._run()
        assert on == off

    def test_engine_exports_cache_gauges(self, fresh_cache):
        from repro.obs.instrument import Instrumentation

        obs = Instrumentation.on()
        pm = InferencePerfModel(get_model("OLMoE-1B-7B"), H100_SXM,
                                instrumentation=obs)
        engine = ServingEngine(pm, instrumentation=obs)
        for req in FixedShapeWorkload(batch_size=4, input_tokens=64,
                                      output_tokens=8).requests():
            engine.submit(req)
        engine.run()
        hits = obs.metrics.gauge("stepcache_hits_total").value
        misses = obs.metrics.gauge("stepcache_misses_total").value
        assert misses > 0
        assert hits >= 0
