"""Tests for repro.moe.router."""

from __future__ import annotations

import numpy as np
import pytest

from repro.moe.router import TopKRouter


@pytest.fixture
def router(rng):
    return TopKRouter(hidden_size=32, num_experts=8, top_k=2, rng=rng)


class TestRouting:
    def test_result_shapes(self, router, rng):
        x = rng.normal(0, 1, (10, 32)).astype(np.float32)
        r = router.route(x)
        assert r.indices.shape == (10, 2)
        assert r.weights.shape == (10, 2)
        assert r.probs.shape == (10, 8)
        assert r.num_tokens == 10 and r.top_k == 2 and r.num_experts == 8

    def test_indices_distinct_per_token(self, router, rng):
        x = rng.normal(0, 1, (50, 32)).astype(np.float32)
        idx = router.route(x).indices
        assert all(len(set(row.tolist())) == 2 for row in idx)

    def test_weights_renormalized(self, router, rng):
        x = rng.normal(0, 1, (20, 32)).astype(np.float32)
        w = router.route(x).weights
        assert np.allclose(w.sum(axis=-1), 1.0, atol=1e-6)
        assert (w >= 0).all()

    def test_weights_without_renormalize(self, rng):
        router = TopKRouter(32, 8, 2, renormalize=False, rng=rng)
        x = rng.normal(0, 1, (20, 32)).astype(np.float32)
        r = router.route(x)
        # raw softmax mass of the top-2 is < 1
        assert (r.weights.sum(axis=-1) < 1.0).all()
        expected = np.take_along_axis(r.probs, r.indices, axis=-1)
        assert np.allclose(r.weights, expected, atol=1e-6)

    def test_best_expert_first(self, router, rng):
        x = rng.normal(0, 1, (30, 32)).astype(np.float32)
        r = router.route(x)
        assert (r.weights[:, 0] >= r.weights[:, 1] - 1e-6).all()

    def test_deterministic_given_seed(self):
        a = TopKRouter(16, 4, 1, rng=np.random.default_rng(5))
        b = TopKRouter(16, 4, 1, rng=np.random.default_rng(5))
        x = np.random.default_rng(0).normal(0, 1, (8, 16)).astype(np.float32)
        assert np.array_equal(a.route(x).indices, b.route(x).indices)

    def test_input_validation(self, router):
        with pytest.raises(ValueError):
            router.route(np.zeros((4, 31), np.float32))
        with pytest.raises(ValueError):
            TopKRouter(8, 4, 5)
        with pytest.raises(ValueError):
            TopKRouter(8, 4, 2, expert_bias_std=-0.1)


class TestBalanceStatistics:
    def test_balanced_router_near_uniform(self, rng):
        router = TopKRouter(64, 16, 2, rng=rng)
        x = rng.normal(0, 1, (4000, 64)).astype(np.float32)
        r = router.route(x)
        counts = r.expert_counts()
        assert counts.sum() == 4000 * 2
        # every expert used, max/mean below 2
        assert counts.min() > 0
        assert counts.max() / counts.mean() < 2.0

    def test_biased_router_is_skewed(self, rng):
        flat = TopKRouter(64, 16, 2, expert_bias_std=0.0,
                          rng=np.random.default_rng(1))
        skew = TopKRouter(64, 16, 2, expert_bias_std=1.5,
                          rng=np.random.default_rng(1))
        x = rng.normal(0, 1, (4000, 64)).astype(np.float32)
        flat_imb = flat.route(x).expert_counts().max() / (4000 * 2 / 16)
        skew_imb = skew.route(x).expert_counts().max() / (4000 * 2 / 16)
        assert skew_imb > flat_imb * 1.5

    def test_load_balance_loss_near_one_when_balanced(self, rng):
        router = TopKRouter(64, 8, 2, rng=rng)
        x = rng.normal(0, 1, (2000, 64)).astype(np.float32)
        assert router.route(x).load_balance_loss() == pytest.approx(1.0, abs=0.1)

    def test_load_balance_loss_grows_with_bias(self, rng):
        skew = TopKRouter(64, 8, 2, expert_bias_std=2.0, rng=rng)
        x = rng.normal(0, 1, (2000, 64)).astype(np.float32)
        assert skew.route(x).load_balance_loss() > 1.2

    def test_z_loss_positive(self, router, rng):
        x = rng.normal(0, 1, (16, 32)).astype(np.float32)
        assert router.z_loss(x) > 0


class TestDropExperts:
    def test_drop_reduces_experts(self, router, rng):
        pruned = router.drop_experts(np.array([0, 3]))
        assert pruned.num_experts == 6
        x = rng.normal(0, 1, (10, 32)).astype(np.float32)
        assert pruned.route(x).indices.max() < 6

    def test_survivor_weights_preserved(self, router):
        pruned = router.drop_experts(np.array([0]))
        assert np.array_equal(pruned.weight, router.weight[:, 1:])

    def test_cannot_drop_all(self, router):
        with pytest.raises(ValueError):
            router.drop_experts(np.arange(8))

    def test_top_k_capped(self, rng):
        router = TopKRouter(16, 4, 3, rng=rng)
        pruned = router.drop_experts(np.array([0, 1]))
        assert pruned.top_k == 2
