"""Tests for sliding-window attention support."""

from __future__ import annotations

import dataclasses

import pytest

from repro.hardware.gpus import H100_SXM
from repro.models.config import AttentionConfig
from repro.models.zoo import MIXTRAL_8X7B
from repro.optim.quantization import FP16_CONFIG
from repro.perfmodel.flops import attention_core_cost
from repro.perfmodel.memory import MemoryModel
from repro.perfmodel.phases import StepModel


def _windowed(model, window):
    att = dataclasses.replace(model.attention, sliding_window=window)
    return dataclasses.replace(model, attention=att)


class TestConfig:
    def test_effective_kv_len(self):
        att = AttentionConfig(num_heads=4, num_kv_heads=4, head_dim=16,
                              sliding_window=128)
        assert att.effective_kv_len(64) == 64
        assert att.effective_kv_len(1000) == 128

    def test_disabled_window(self):
        att = AttentionConfig(num_heads=4, num_kv_heads=4, head_dim=16)
        assert att.effective_kv_len(1000) == 1000

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            AttentionConfig(num_heads=4, num_kv_heads=4, head_dim=16,
                            sliding_window=-1)
        att = AttentionConfig(num_heads=4, num_kv_heads=4, head_dim=16)
        with pytest.raises(ValueError):
            att.effective_kv_len(-1)


class TestPerfEffects:
    def test_kv_read_capped(self):
        full = attention_core_cost(MIXTRAL_8X7B, 1, 1, 16384, FP16_CONFIG)
        win = attention_core_cost(
            _windowed(MIXTRAL_8X7B, 4096), 1, 1, 16384, FP16_CONFIG
        )
        assert win.bytes < full.bytes / 3

    def test_no_effect_inside_window(self):
        full = attention_core_cost(MIXTRAL_8X7B, 1, 1, 2048, FP16_CONFIG)
        win = attention_core_cost(
            _windowed(MIXTRAL_8X7B, 4096), 1, 1, 2048, FP16_CONFIG
        )
        assert win.bytes == full.bytes
        assert win.flops == full.flops

    def test_kv_memory_capped(self):
        base = MemoryModel(MIXTRAL_8X7B, H100_SXM)
        windowed = MemoryModel(_windowed(MIXTRAL_8X7B, 4096), H100_SXM)
        assert windowed.kv_cache_bytes(4, 16384) == pytest.approx(
            base.kv_cache_bytes(4, 4096)
        )

    def test_decode_latency_flattens_beyond_window(self):
        steps = StepModel(_windowed(MIXTRAL_8X7B, 4096), H100_SXM,
                          plan=__import__("repro.parallel.plan",
                                          fromlist=["ParallelPlan"]).ParallelPlan(tp=2))
        at_window = steps.decode_step_time(8, 4096)
        far_beyond = steps.decode_step_time(8, 32768)
        assert far_beyond == pytest.approx(at_window, rel=0.02)


class TestFunctionalWindow:
    def test_causal_mask_window(self):
        from repro.tensor.functional import causal_mask

        m = causal_mask(4, 4, sliding_window=2)
        # row i attends to positions {i-1, i}
        assert m[0].tolist() == [True, False, False, False]
        assert m[3].tolist() == [False, False, True, True]

    def test_mask_window_with_cache_offset(self):
        from repro.tensor.functional import causal_mask

        m = causal_mask(1, 10, sliding_window=3)
        assert m[0].tolist() == [False] * 7 + [True] * 3

    def test_attention_honors_window(self, rng):
        """Far-past tokens must not influence a windowed query."""
        import dataclasses

        import numpy as np

        from repro.models.config import AttentionConfig
        from repro.tensor.attention import Attention

        cfg = AttentionConfig(num_heads=2, num_kv_heads=2, head_dim=8,
                              sliding_window=3)
        attn = Attention(cfg, 16, rng, max_positions=32)
        x = rng.normal(0, 1, (1, 8, 16)).astype(np.float32)
        out1 = attn(x)
        x2 = x.copy()
        x2[0, 0] += 5.0  # perturb a token outside the last query's window
        out2 = attn(x2)
        assert np.allclose(out1[0, -1], out2[0, -1], atol=1e-5)
        # but inside-window history still matters
        x3 = x.copy()
        x3[0, -2] += 5.0
        out3 = attn(x3)
        assert not np.allclose(out1[0, -1], out3[0, -1], atol=1e-3)
