"""Tests for repro.models.params (Table 1 / Fig. 1 accounting)."""

from __future__ import annotations

import pytest

from repro.models.config import AttentionConfig, AttentionKind
from repro.models.params import (
    attention_params,
    layer_params,
    model_params,
    vision_tower_params,
)
from repro.models.zoo import (
    ALL_MODELS,
    DEEPSEEK_V2_LITE,
    MIXTRAL_8X7B,
    OLMOE_1B_7B,
    QWEN3_30B_A3B,
)


class TestAttentionParams:
    def test_gqa_formula(self):
        cfg = AttentionConfig(num_heads=32, num_kv_heads=8, head_dim=128)
        h = 4096
        expected = h * 32 * 128 + 2 * h * 8 * 128 + 32 * 128 * h
        assert attention_params(cfg, h) == expected

    def test_mla_counts_low_rank_paths(self):
        cfg = DEEPSEEK_V2_LITE.attention
        n = attention_params(cfg, DEEPSEEK_V2_LITE.hidden_size)
        # DeepSeek-V2-Lite attention is ~13.8M params/layer
        assert 12e6 < n < 16e6

    def test_mla_with_q_lora_smaller_than_without(self):
        base = dict(num_heads=16, num_kv_heads=16, head_dim=192,
                    kind=AttentionKind.MLA, kv_lora_rank=512,
                    qk_rope_head_dim=64, qk_nope_head_dim=128, v_head_dim=128)
        without = AttentionConfig(**base)
        with_q = AttentionConfig(**base, q_lora_rank=256)
        h = 2048
        assert attention_params(with_q, h) < attention_params(without, h)


class TestLayerParams:
    def test_moe_layer_components(self, tiny_model):
        lp = layer_params(tiny_model, 0)
        assert lp.is_moe
        h, f, e = 64, 32, 8
        assert lp.routed_experts_total == e * 3 * h * f
        assert lp.routed_experts_active == 2 * 3 * h * f
        assert lp.router == h * e
        assert lp.dense_ffn == 0
        assert lp.total > lp.active

    def test_dense_layer_components(self, tiny_dense_model):
        lp = layer_params(tiny_dense_model, 0)
        assert not lp.is_moe
        assert lp.routed_experts_total == 0
        assert lp.dense_ffn == 3 * 32 * 48
        assert lp.total == lp.active

    def test_active_le_total(self):
        for model in ALL_MODELS.values():
            pb = model_params(model)
            assert pb.active <= pb.total, model.name


class TestPublishedCounts:
    """Computed totals must match the published parameter counts."""

    @pytest.mark.parametrize("model", list(ALL_MODELS.values()),
                             ids=lambda m: m.name)
    def test_total_within_5pct(self, model):
        if not model.published_total_params:
            pytest.skip("no published total")
        pb = model_params(model)
        assert pb.total == pytest.approx(model.published_total_params, rel=0.05)

    @pytest.mark.parametrize("model", list(ALL_MODELS.values()),
                             ids=lambda m: m.name)
    def test_active_within_15pct(self, model):
        if not model.published_active_params:
            pytest.skip("no published active count")
        pb = model_params(model)
        assert pb.active == pytest.approx(model.published_active_params, rel=0.15)

    def test_mixtral_exact_shape(self):
        pb = model_params(MIXTRAL_8X7B)
        assert pb.total == pytest.approx(46.7e9, rel=0.01)
        assert pb.active == pytest.approx(12.9e9, rel=0.01)

    def test_qwen3_30b_active(self):
        pb = model_params(QWEN3_30B_A3B)
        assert pb.active == pytest.approx(3.3e9, rel=0.03)


class TestBreakdownViews:
    def test_component_totals_sum_to_total(self):
        for model in (MIXTRAL_8X7B, OLMOE_1B_7B, DEEPSEEK_V2_LITE):
            pb = model_params(model)
            assert sum(pb.component_totals().values()) == pb.total

    def test_component_actives_sum_to_active(self):
        pb = model_params(MIXTRAL_8X7B)
        assert sum(pb.component_actives().values()) == pb.active

    def test_moe_dominates_fig1(self):
        """Fig. 1's headline: MoE layers dominate parameters."""
        for model in (MIXTRAL_8X7B, OLMOE_1B_7B):
            pb = model_params(model)
            assert pb.moe_fraction_total > 0.85
            assert pb.moe_fraction_active > 0.5

    def test_moe_fraction_active_lt_total(self):
        pb = model_params(MIXTRAL_8X7B)
        assert pb.moe_fraction_active < pb.moe_fraction_total

    def test_vision_tower_params_positive(self):
        from repro.models.zoo import DEEPSEEK_VL2_TINY

        assert vision_tower_params(DEEPSEEK_VL2_TINY.vision) > 3e8

    def test_layers_tuple_length(self):
        pb = model_params(MIXTRAL_8X7B)
        assert len(pb.layers) == 32
