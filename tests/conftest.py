"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.config import AttentionConfig, ModelConfig, MoEConfig


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_moe() -> MoEConfig:
    """A small MoE block cheap enough for functional tests."""
    return MoEConfig(num_experts=8, top_k=2, expert_ffn_dim=32)


@pytest.fixture
def tiny_model(tiny_moe: MoEConfig) -> ModelConfig:
    """A 2-layer MoE model with tiny dimensions."""
    return ModelConfig(
        name="tiny-moe",
        num_layers=2,
        hidden_size=64,
        vocab_size=128,
        attention=AttentionConfig(num_heads=4, num_kv_heads=2, head_dim=16),
        dense_ffn_dim=0,
        moe=tiny_moe,
    )


@pytest.fixture
def tiny_dense_model() -> ModelConfig:
    """A tiny dense model (no MoE)."""
    return ModelConfig(
        name="tiny-dense",
        num_layers=2,
        hidden_size=32,
        vocab_size=64,
        attention=AttentionConfig(num_heads=4, num_kv_heads=4, head_dim=8),
        dense_ffn_dim=48,
    )
