"""PAR0xx rules: scalar <-> vectorized fast-path parity.

The acceptance scenario lives here: a deliberate one-sided edit to a
vectorized cost expression (on a throwaway copy of the repo's parity
surface) must fail PAR001 against the committed LINT_PARITY.json.
"""

import ast
import pathlib
import shutil
import textwrap

from repro.lint.core import LintProject, get_rule
from repro.lint.parity import (
    MANIFEST_NAME,
    PAIRS,
    current_fingerprints,
    function_fingerprint,
    literal_multiset,
    load_manifest,
    update_manifest,
)

REPO = pathlib.Path(__file__).resolve().parents[1]

#: every file the PAIRS table references (parity surface of the repo)
PARITY_FILES = sorted({spec.scalar[0] for spec in PAIRS}
                      | {spec.vector[0] for spec in PAIRS})

#: unique anchors used to fake a coefficient edit on each side
VECTOR_ANCHOR = "launch = launches * hw.kernel_launch_us * 1e-6"
SCALAR_ANCHOR = "return max(t_compute, t_memory) + cost.launches * hw.kernel_launch_us * 1e-6"


def _fn(src: str) -> ast.FunctionDef:
    return ast.parse(textwrap.dedent(src)).body[0]


def _copy_parity_surface(tmp_path: pathlib.Path,
                         with_manifest: bool = True) -> pathlib.Path:
    for rel in PARITY_FILES:
        dst = tmp_path / rel
        dst.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(REPO / rel, dst)
    if with_manifest:
        shutil.copy(REPO / MANIFEST_NAME, tmp_path / MANIFEST_NAME)
    return tmp_path


def _edit(root: pathlib.Path, rel: str, old: str, new: str) -> None:
    path = root / rel
    text = path.read_text()
    assert text.count(old) == 1, f"anchor not unique in {rel}: {old!r}"
    path.write_text(text.replace(old, new))


def _par001(root: pathlib.Path):
    project = LintProject(root)
    return list(get_rule("PAR001").run(project))


class TestFingerprint:
    def test_insensitive_to_docstring_and_position(self):
        a = _fn("""
            def f(x):
                return 2.0 * x
        """)
        b = _fn("""


            def f(x):
                "moved down, grew a docstring"
                return 2.0 * x
        """)
        assert function_fingerprint(a) == function_fingerprint(b)

    def test_sensitive_to_coefficient(self):
        a = _fn("def f(x):\n    return 2.0 * x\n")
        b = _fn("def f(x):\n    return 3.0 * x\n")
        assert function_fingerprint(a) != function_fingerprint(b)

    def test_sensitive_to_operand_order(self):
        a = _fn("def f(x, y):\n    return x / y\n")
        b = _fn("def f(x, y):\n    return y / x\n")
        assert function_fingerprint(a) != function_fingerprint(b)

    def test_literal_multiset_skips_docstring_and_bools(self):
        fn = _fn("""
            def f(x):
                "has 99 in the docstring"
                flag = True
                return 2 * x + 0.5
        """)
        assert literal_multiset(fn) == {2.0: 1, 0.5: 1}


class TestRepoManifest:
    def test_committed_manifest_matches_the_code(self):
        manifest = load_manifest(REPO)
        assert manifest is not None, "LINT_PARITY.json missing — run " \
                                     "`repro lint --update-parity`"
        assert manifest["pairs"] == current_fingerprints(LintProject(REPO))

    def test_every_pair_function_exists(self):
        project = LintProject(REPO)
        for pair in current_fingerprints(project).values():
            assert pair["scalar"]["sha"] is not None
            assert pair["vector"]["sha"] is not None


class TestSnapshotParity:
    def test_clean_copy_passes(self, tmp_path):
        root = _copy_parity_surface(tmp_path)
        assert _par001(root) == []

    def test_one_sided_vectorized_edit_fails(self, tmp_path):
        root = _copy_parity_surface(tmp_path)
        _edit(root, "src/repro/perfmodel/vectorized.py",
              VECTOR_ANCHOR, VECTOR_ANCHOR.replace("1e-6", "2e-6"))
        vs = _par001(root)
        assert [v.snippet for v in vs] == ["kernel_time:vector:one-sided"]
        assert "one-sided fast-path edit" in vs[0].message
        assert "--update-parity" in vs[0].message

    def test_one_sided_scalar_edit_fails(self, tmp_path):
        root = _copy_parity_surface(tmp_path)
        _edit(root, "src/repro/hardware/roofline.py",
              SCALAR_ANCHOR, SCALAR_ANCHOR.replace("1e-6", "2e-6"))
        vs = _par001(root)
        assert [v.snippet for v in vs] == ["kernel_time:scalar:one-sided"]

    def test_paired_edit_reported_for_rerecord(self, tmp_path):
        root = _copy_parity_surface(tmp_path)
        _edit(root, "src/repro/perfmodel/vectorized.py",
              VECTOR_ANCHOR, VECTOR_ANCHOR.replace("1e-6", "2e-6"))
        _edit(root, "src/repro/hardware/roofline.py",
              SCALAR_ANCHOR, SCALAR_ANCHOR.replace("1e-6", "2e-6"))
        vs = _par001(root)
        assert [v.snippet for v in vs] == ["kernel_time:paired"]

    def test_update_parity_clears_the_drift(self, tmp_path):
        root = _copy_parity_surface(tmp_path)
        _edit(root, "src/repro/perfmodel/vectorized.py",
              VECTOR_ANCHOR, VECTOR_ANCHOR.replace("1e-6", "2e-6"))
        _edit(root, "src/repro/hardware/roofline.py",
              SCALAR_ANCHOR, SCALAR_ANCHOR.replace("1e-6", "2e-6"))
        update_manifest(root)
        assert _par001(root) == []

    def test_missing_manifest_is_an_error(self, tmp_path):
        root = _copy_parity_surface(tmp_path, with_manifest=False)
        vs = _par001(root)
        assert len(vs) == 1
        assert "manifest missing" in vs[0].message


class TestLiteralMirror:
    def _mini_pair(self, tmp_path, scalar_coeff: str, vector_coeff: str):
        phases = tmp_path / "src/repro/perfmodel/phases.py"
        phases.parent.mkdir(parents=True, exist_ok=True)
        phases.write_text(textwrap.dedent(f"""
            class StepModel:
                def _attention_time(self, x):
                    return {scalar_coeff} * x
        """))
        (tmp_path / "src/repro/perfmodel/vectorized.py").write_text(
            textwrap.dedent(f"""
            class VectorizedStepModel:
                def _attention_time(self, x):
                    return {vector_coeff} * x
        """))
        project = LintProject(tmp_path)
        return [v for v in get_rule("PAR002").run(project)
                if v.snippet.startswith("attention:")]

    def test_one_sided_coefficient_caught(self, tmp_path):
        vs = self._mini_pair(tmp_path, "2.0", "3.0")
        assert len(vs) == 1
        assert "[3]" in vs[0].message

    def test_mirrored_coefficient_clean(self, tmp_path):
        assert self._mini_pair(tmp_path, "2.0", "2.0") == []

    def test_repeated_constant_across_branches_allowed(self, tmp_path):
        # array code legitimately repeats a constant (scalar/ndarray
        # branches); only *distinct* vector-side values must mirror
        assert self._mini_pair(tmp_path, "2.0", "2.0 + x * 2.0 - 2.0") == []

    def test_repo_is_literal_clean(self):
        assert list(get_rule("PAR002").run(LintProject(REPO))) == []
