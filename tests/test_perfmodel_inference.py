"""Tests for repro.perfmodel.inference (end-to-end metrics)."""

from __future__ import annotations

import pytest

from repro.hardware.gpus import H100_SXM
from repro.models.zoo import DEEPSEEK_VL2_TINY, MIXTRAL_8X7B, OLMOE_1B_7B
from repro.parallel.plan import ParallelPlan
from repro.perfmodel.inference import InferencePerfModel, OOMError


@pytest.fixture(scope="module")
def olmoe():
    return InferencePerfModel(OLMOE_1B_7B, H100_SXM)


class TestGenerate:
    def test_metrics_consistent(self, olmoe):
        m = olmoe.generate(8, 512, 256)
        assert 0 < m.ttft_s < m.e2e_latency_s
        assert m.throughput_tok_s > 0
        assert m.itl_s > 0
        assert m.shape.total_tokens == 8 * 768

    def test_e2e_equals_ttft_plus_decode(self, olmoe):
        ttft = olmoe.ttft(8, 512)
        decode = olmoe.decode_time(8, 512, 256)
        m = olmoe.generate(8, 512, 256)
        assert m.e2e_latency_s == pytest.approx(ttft + decode)

    def test_single_output_token_means_no_decode(self, olmoe):
        m = olmoe.generate(4, 256, 1)
        assert m.e2e_latency_s == pytest.approx(m.ttft_s)
        assert olmoe.decode_time(4, 256, 1) == 0.0

    def test_decode_time_integrates_growing_context(self, olmoe):
        """Decode over a long generation must cost more per token than the
        first steps alone (the KV cache grows)."""
        short_ctx_step = olmoe.steps.decode_step_time(8, 513)
        total = olmoe.decode_time(8, 512, 1024)
        assert total > short_ctx_step * 1023

    def test_ttft_dominated_by_prefill_length(self, olmoe):
        assert olmoe.ttft(4, 2048) > 2 * olmoe.ttft(4, 512)


class TestOOMHandling:
    def test_oversized_raises(self):
        pm = InferencePerfModel(MIXTRAL_8X7B, H100_SXM)
        with pytest.raises(OOMError) as err:
            pm.generate(1, 128, 128)
        assert err.value.needed_gb > err.value.budget_gb

    def test_check_memory_false_bypasses(self):
        pm = InferencePerfModel(MIXTRAL_8X7B, H100_SXM)
        m = pm.generate(1, 128, 128, check_memory=False)
        assert m.throughput_tok_s > 0

    def test_fits_flag(self, olmoe):
        assert olmoe.fits(8, 2048)
        assert not olmoe.fits(2048, 8192)


class TestVLM:
    def test_images_extend_context(self):
        pm = InferencePerfModel(DEEPSEEK_VL2_TINY, H100_SXM)
        without = pm.generate(4, 256, 64)
        with_img = pm.generate(4, 256, 64, images_per_sample=1)
        assert with_img.ttft_s > without.ttft_s
        assert with_img.samples_per_s < without.samples_per_s

    def test_images_on_text_model_rejected(self, olmoe):
        with pytest.raises(ValueError, match="vision"):
            olmoe.generate(1, 64, 8, images_per_sample=1)


class TestPaperTrends:
    """Coarse end-to-end sanity of the calibrated model."""

    def test_throughput_increases_with_batch(self, olmoe):
        t1 = olmoe.generate(1, 512, 512).throughput_tok_s
        t32 = olmoe.generate(32, 512, 512).throughput_tok_s
        assert t32 > 5 * t1

    def test_throughput_decreases_with_length(self, olmoe):
        short = olmoe.generate(32, 128, 128).throughput_tok_s
        long = olmoe.generate(32, 2048, 2048, check_memory=False).throughput_tok_s
        assert short > long

    def test_tp_improves_throughput(self):
        single = InferencePerfModel(OLMOE_1B_7B, H100_SXM)
        tp4 = InferencePerfModel(OLMOE_1B_7B, H100_SXM, plan=ParallelPlan(tp=4))
        assert (tp4.generate(16, 1024, 1024).throughput_tok_s
                > single.generate(16, 1024, 1024).throughput_tok_s)

    def test_plausible_absolute_range(self, olmoe):
        """bs1 decode rate for a 1.3B-active model on H100 should land in
        the low hundreds of tokens/s."""
        rate = 1.0 / olmoe.steps.decode_step_time(1, 512)
        assert 50 < rate < 2000
