"""Tests for sampled generation and step-profile/roofline diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.gpus import H100_SXM
from repro.hardware.roofline import KernelCost, arithmetic_intensity, is_memory_bound
from repro.models.zoo import OLMOE_1B_7B, get_model
from repro.moe.model import MoETransformer
from repro.perfmodel.phases import StepModel


@pytest.fixture(scope="module")
def model():
    cfg = get_model("OLMoE-1B-7B").scaled(1 / 32)
    return MoETransformer(cfg, seed=4, max_positions=64)


class TestSampledGeneration:
    def test_temperature_zero_is_greedy(self, model):
        prompt = np.random.default_rng(0).integers(
            0, model.config.vocab_size, size=(2, 4))
        greedy = model.generate_greedy(prompt, 5)
        sampled = model.generate(prompt, 5, temperature=0.0)
        assert np.array_equal(greedy, sampled)

    def test_sampling_is_seeded(self, model):
        prompt = np.random.default_rng(1).integers(
            0, model.config.vocab_size, size=(1, 4))
        a = model.generate(prompt, 6, temperature=1.0,
                           rng=np.random.default_rng(7))
        b = model.generate(prompt, 6, temperature=1.0,
                           rng=np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_high_temperature_diversifies(self, model):
        prompt = np.random.default_rng(2).integers(
            0, model.config.vocab_size, size=(1, 4))
        outs = {tuple(model.generate(prompt, 8, temperature=2.0,
                                     rng=np.random.default_rng(s))[0])
                for s in range(6)}
        assert len(outs) > 1

    def test_top_p_restricts_support(self, model):
        """With a tiny nucleus, sampling collapses towards greedy."""
        prompt = np.random.default_rng(3).integers(
            0, model.config.vocab_size, size=(1, 4))
        greedy = model.generate_greedy(prompt, 4)
        nucleus = model.generate(prompt, 4, temperature=0.7, top_p=1e-6,
                                 rng=np.random.default_rng(0))
        assert np.array_equal(greedy, nucleus)

    def test_ids_in_vocab(self, model):
        prompt = np.random.default_rng(4).integers(
            0, model.config.vocab_size, size=(3, 4))
        out = model.generate(prompt, 5, temperature=1.0, top_p=0.9)
        assert (out >= 0).all() and (out < model.config.vocab_size).all()

    def test_validation(self, model):
        prompt = np.zeros((1, 4), dtype=np.int64)
        with pytest.raises(ValueError):
            model.generate(prompt, 4, temperature=-1.0)
        with pytest.raises(ValueError):
            model.generate(prompt, 4, temperature=1.0, top_p=0.0)


class TestRooflineDiagnostics:
    def test_arithmetic_intensity(self):
        assert arithmetic_intensity(KernelCost(100, 50)) == 2.0
        assert arithmetic_intensity(KernelCost(0, 10)) == 0.0
        assert arithmetic_intensity(KernelCost(5, 0)) == float("inf")

    def test_decode_is_memory_bound_prefill_is_not(self):
        # decode: 1 token through a big matrix
        h = 4096
        decode = KernelCost(flops=2 * 1 * h * h, bytes=h * h * 2)
        prefill = KernelCost(flops=2 * 65536 * h * h, bytes=h * h * 2)
        assert is_memory_bound(decode, H100_SXM)
        assert not is_memory_bound(prefill, H100_SXM)


class TestStepProfile:
    def test_shares_sum_to_one(self):
        steps = StepModel(OLMOE_1B_7B, H100_SXM)
        bd = steps.step_breakdown(16, 16, 1024, "decode")
        assert sum(bd.shares().values()) == pytest.approx(1.0)

    def test_describe_renders(self):
        steps = StepModel(OLMOE_1B_7B, H100_SXM)
        bd = steps.step_breakdown(16, 16, 1024, "decode")
        text = bd.describe()
        assert text.startswith("decode step:")
        assert "moe_ffn" in text
        assert "|#" in text

    def test_decode_profile_dominated_by_moe(self):
        """For an all-MoE model at moderate batch, expert streaming should
        be the top component of decode time."""
        steps = StepModel(OLMOE_1B_7B, H100_SXM)
        bd = steps.step_breakdown(16, 16, 1024, "decode")
        shares = bd.shares()
        assert shares["moe_ffn"] == max(shares.values())
