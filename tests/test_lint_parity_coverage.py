"""PAR1xx rules: auto-discovered parity coverage.

The acceptance scenario lives here: adding a new vectorized mirror to a
throwaway copy of the parity surface — without registering a PairSpec —
must fail the coverage gate (PAR101 when a scalar twin exists, PAR102
when nothing watches the new function at all).
"""

import pathlib
import shutil

from repro.lint.core import LintProject, get_rule
from repro.lint.flow.coverage import (
    PARITY_IGNORE,
    SCALAR_FILES,
    VECTOR_FILES,
    covered_functions,
    discover,
    mirror_key,
)
from repro.lint.parity import _function_index

REPO = pathlib.Path(__file__).resolve().parents[1]


def _copy_surface(tmp_path: pathlib.Path) -> pathlib.Path:
    for rel in sorted(set(VECTOR_FILES) | set(SCALAR_FILES)):
        dst = tmp_path / rel
        dst.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(REPO / rel, dst)
    return tmp_path


def _append(root: pathlib.Path, rel: str, src: str) -> None:
    path = root / rel
    path.write_text(path.read_text() + src)


def _run(root: pathlib.Path, rule_id: str):
    project = LintProject(root)
    return list(get_rule(rule_id).run(project))


class TestMirrorKey:
    def test_strips_underscores_and_suffixes(self):
        assert mirror_key("_kernel_time") == "kernel"
        assert mirror_key("kernel_time") == "kernel"
        assert mirror_key("VectorizedStepModel._gemm_eff") == "gemm"
        assert mirror_key("gemm_efficiency") == "gemm"
        assert mirror_key("step_totals") == "step"
        assert mirror_key("embedding_cost") == "embedding"

    def test_never_drops_the_last_token(self):
        assert mirror_key("_total") == "total"
        assert mirror_key("cost") == "cost"


class TestCurrentCoverage:
    def test_repo_surface_is_fully_covered(self):
        project = LintProject(REPO)
        entries = discover(project)
        assert entries, "vectorized surface not found"
        bad = [e for e in entries
               if e["status"] in ("unregistered", "unwatched")]
        assert bad == []

    def test_ignore_entries_point_at_real_functions(self):
        # an allowlist entry for a renamed/deleted helper is dead weight
        project = LintProject(REPO)
        for (path, qualname), reason in PARITY_IGNORE.items():
            sf = project.file(path)
            assert sf is not None, path
            assert qualname in _function_index(sf.tree), (path, qualname)
            assert reason

    def test_ignore_and_covered_do_not_overlap(self):
        covered = covered_functions()
        assert not set(PARITY_IGNORE) & covered

    def test_par_rules_clean_on_repo(self):
        for rid in ("PAR101", "PAR102"):
            assert _run(REPO, rid) == []


class TestUnregisteredMirror:
    def test_new_vectorized_mirror_without_pairspec_fails(self, tmp_path):
        root = _copy_surface(tmp_path)
        # scalar flops.py has embedding_cost -> mirror key "embedding"
        _append(root, "src/repro/perfmodel/vectorized.py", (
            "\n\ndef _embedding_time(model, hw):\n"
            "    return 2.0 * model.d_model\n"))
        vs = _run(root, "PAR101")
        assert [v.rule for v in vs] == ["PAR101"]
        assert "_embedding_time" in vs[0].message
        assert "embedding_cost" in vs[0].message
        assert vs[0].path == "src/repro/perfmodel/vectorized.py"

    def test_registered_surface_stays_clean(self, tmp_path):
        root = _copy_surface(tmp_path)
        assert _run(root, "PAR101") == []


class TestUnwatchedVector:
    def test_new_function_with_no_twin_fails(self, tmp_path):
        root = _copy_surface(tmp_path)
        _append(root, "src/repro/serving/fastpath.py", (
            "\n\ndef _novel_reorder(batch):\n"
            "    return sorted(batch)\n"))
        vs = _run(root, "PAR102")
        assert [v.rule for v in vs] == ["PAR102"]
        assert "_novel_reorder" in vs[0].message

    def test_dunders_are_exempt(self, tmp_path):
        root = _copy_surface(tmp_path)
        entries = discover(LintProject(root))
        assert not any(e["qualname"].endswith("__init__") for e in entries)
