"""Edge-case tests for the serving EventLog and ServingResult percentiles."""

from __future__ import annotations

import pytest

from repro.serving.engine import ServingResult
from repro.serving.events import Event, EventLog, EventType
from repro.serving.request import Request, SamplingParams


def make_request(request_id=0):
    return Request(request_id=request_id, prompt_tokens=8,
                   sampling=SamplingParams(max_tokens=4), arrival_time=0.0)


def ev(time, type=EventType.DECODE, **kwargs):
    return Event(time=time, type=type, **kwargs)


class TestEventLogOrdering:
    def test_out_of_order_record_raises(self):
        log = EventLog()
        log.record(ev(1.0))
        with pytest.raises(ValueError, match="time order"):
            log.record(ev(0.5))

    def test_tiny_backwards_jitter_tolerated(self):
        # floating-point noise below 1e-12 must not be rejected
        log = EventLog()
        log.record(ev(1.0))
        log.record(ev(1.0 - 1e-13))
        assert len(log.events) == 2

    def test_equal_timestamps_allowed(self):
        log = EventLog()
        log.record(ev(1.0, EventType.PREFILL))
        log.record(ev(1.0, EventType.FINISH))
        assert log.count(EventType.FINISH) == 1


class TestEventLogIndices:
    def test_empty_log(self):
        log = EventLog()
        assert log.peak_kv_utilization() == 0.0
        assert log.total_busy_time() == 0.0
        assert log.num_iterations == 0
        assert log.of_type(EventType.DECODE) == []

    def test_count_and_of_type_track_record(self):
        log = EventLog()
        log.record(ev(0.0, EventType.ARRIVAL))
        log.record(ev(0.1, EventType.PREFILL, duration_s=0.1))
        log.record(ev(0.2, EventType.DECODE, duration_s=0.05))
        log.record(ev(0.3, EventType.DECODE, duration_s=0.05))
        assert log.count(EventType.DECODE) == 2
        assert [e.time for e in log.of_type(EventType.DECODE)] == [0.2, 0.3]
        assert log.num_iterations == 3
        assert log.total_busy_time() == pytest.approx(0.2)

    def test_extend_records_batch_and_updates_indices(self):
        log = EventLog()
        log.record(ev(0.0, EventType.PREFILL, duration_s=0.1))
        log.extend([ev(0.2, EventType.DECODE, duration_s=0.05,
                       kv_utilization=0.6),
                    ev(0.3, EventType.DECODE, duration_s=0.05)])
        assert log.count(EventType.DECODE) == 2
        assert log.num_iterations == 3
        assert log.total_busy_time() == pytest.approx(0.2)
        assert log.peak_kv_utilization() == pytest.approx(0.6)

    def test_extend_rejects_out_of_order_batch_head(self):
        log = EventLog()
        log.record(ev(1.0))
        with pytest.raises(ValueError, match="time order"):
            log.extend([ev(0.5)])

    def test_extend_empty_batch_is_noop(self):
        log = EventLog()
        log.extend([])
        assert log.events == []

    def test_of_type_since_is_a_cursor_tail(self):
        log = EventLog()
        log.record(ev(0.0, EventType.DECODE))
        cursor = log.count(EventType.DECODE)
        log.record(ev(0.1, EventType.DECODE))
        log.record(ev(0.2, EventType.DECODE))
        fresh = log.of_type_since(EventType.DECODE, cursor)
        assert [e.time for e in fresh] == [0.1, 0.2]
        assert log.of_type_since(EventType.DECODE, 3) == []

    def test_of_type_returns_a_copy(self):
        log = EventLog()
        log.record(ev(0.0))
        log.of_type(EventType.DECODE).clear()
        assert log.count(EventType.DECODE) == 1

    def test_peak_kv_is_running_max(self):
        log = EventLog()
        log.record(ev(0.0, kv_utilization=0.4))
        log.record(ev(0.1, kv_utilization=0.9))
        log.record(ev(0.2, kv_utilization=0.2))
        assert log.peak_kv_utilization() == pytest.approx(0.9)

    def test_post_init_indexes_preexisting_events(self):
        events = [
            ev(0.0, EventType.PREFILL, duration_s=0.1, kv_utilization=0.5),
            ev(0.1, EventType.DECODE, duration_s=0.2, kv_utilization=0.3),
        ]
        log = EventLog(events=events)
        assert log.count(EventType.PREFILL) == 1
        assert log.num_iterations == 2
        assert log.total_busy_time() == pytest.approx(0.3)
        assert log.peak_kv_utilization() == pytest.approx(0.5)


class TestServingResultPercentiles:
    @staticmethod
    def _result(requests):
        return ServingResult(requests=requests, log=EventLog(), makespan=0.0)

    def test_percentiles_raise_on_empty_result(self):
        result = self._result([])
        with pytest.raises(ValueError, match="no request produced"):
            result.p99_ttft()
        with pytest.raises(ValueError, match="no request produced"):
            result.p50_ttft()
        with pytest.raises(ValueError, match="no request finished"):
            result.p99_e2e()

    def test_percentiles_raise_before_first_token(self):
        result = self._result([make_request()])
        with pytest.raises(ValueError):
            result.p99_ttft()
        with pytest.raises(ValueError):
            result.mean_ttft()

    def test_percentiles_for_single_request(self):
        req = make_request()
        req.first_token_time = 0.25
        req.finish_time = 1.0
        result = self._result([req])
        assert result.p50_ttft() == pytest.approx(0.25)
        assert result.p99_ttft() == pytest.approx(0.25)
        assert result.p99_e2e() == pytest.approx(1.0)
