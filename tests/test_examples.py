"""Smoke tests: every example script imports and the cheap ones run."""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _load(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = (
    "quickstart",
    "capacity_planning",
    "serving_simulation",
    "expert_routing_study",
    "scaling_beyond_one_gpu",
)


class TestExamples:
    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_imports_and_has_main(self, name):
        module = _load(name)
        assert callable(module.main)

    def test_quickstart_runs(self, capsys):
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "Mixtral-8x7B" in out
        assert "tok/s" in out

    def test_capacity_planning_runs(self, capsys, monkeypatch):
        module = _load("capacity_planning")
        monkeypatch.setattr(sys, "argv", ["capacity_planning.py", "OLMoE-1B-7B"])
        module.main()
        out = capsys.readouterr().out
        assert "highest throughput" in out

    def test_scaling_study_runs(self, capsys):
        _load("scaling_beyond_one_gpu").main()
        out = capsys.readouterr().out
        assert "EP dispatch" in out
        assert "LPT" in out
