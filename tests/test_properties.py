"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.metrics import GenerationShape, itl_eq1, throughput_eq2
from repro.hardware.gpus import H100_SXM
from repro.hardware.roofline import KernelCost, gemm_efficiency, kernel_time
from repro.models.config import MoEConfig
from repro.moe.layer import MoELayer
from repro.moe.router import TopKRouter
from repro.moe.routing_math import expected_expert_coverage, expected_group_imbalance
from repro.optim.speculative import expected_tokens_per_cycle, simulate_accepted_tokens
from repro.serving.kv_cache import PagedKVCache
from repro.tensor.dtypes import quantize_dequantize, quantize_fp8
from repro.tensor.functional import causal_mask, softmax, top_k_indices

_settings = settings(max_examples=50, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


class TestQuantizationProperties:
    @given(st.lists(st.floats(-400, 400, allow_nan=False), min_size=1, max_size=64))
    @_settings
    def test_fp8_idempotent_and_bounded(self, vals):
        x = np.array(vals, dtype=np.float32)
        q = quantize_fp8(x)
        assert np.array_equal(quantize_fp8(q), q)
        assert (np.abs(q) <= 448.0).all()
        # sign preserved
        assert np.array_equal(np.sign(q)[q != 0], np.sign(x)[q != 0])

    @given(st.sampled_from(["fp16", "bf16", "fp8_e4m3", "int8", "int4"]),
           st.integers(1, 200))
    @_settings
    def test_quantize_dequantize_error_bounded(self, dtype, n):
        rng = np.random.default_rng(n)
        x = rng.normal(0, 1, n).astype(np.float32)
        q = quantize_dequantize(x, dtype)
        # worst case (int4): absmax/7 half-step error per element
        bound = np.abs(x).max() / 7 * 0.5 + 1e-3
        assert np.abs(q - x).max() <= bound + np.abs(x).max() / 16


class TestFunctionalProperties:
    @given(st.integers(1, 8), st.integers(1, 32))
    @_settings
    def test_softmax_simplex(self, rows, cols):
        rng = np.random.default_rng(rows * 100 + cols)
        x = rng.normal(0, 10, (rows, cols))
        s = softmax(x)
        assert np.allclose(s.sum(axis=-1), 1.0, atol=1e-5)
        assert (s >= 0).all()

    @given(st.integers(1, 20), st.integers(1, 20))
    @_settings
    def test_top_k_returns_distinct_valid_indices(self, n, seed):
        rng = np.random.default_rng(seed)
        k = rng.integers(1, n + 1)
        x = rng.normal(0, 1, (4, n))
        idx = top_k_indices(x, int(k))
        for row in idx:
            assert len(set(row.tolist())) == k
            assert (row >= 0).all() and (row < n).all()

    @given(st.integers(1, 16), st.integers(0, 16))
    @_settings
    def test_causal_mask_row_counts(self, q_len, extra):
        kv_len = q_len + extra
        m = causal_mask(q_len, kv_len)
        # row i allows exactly extra + i + 1 positions
        assert m.sum(axis=1).tolist() == [extra + i + 1 for i in range(q_len)]


class TestRouterProperties:
    @given(st.integers(2, 16), st.integers(1, 8), st.integers(1, 40))
    @_settings
    def test_routing_invariants(self, experts, k, tokens):
        k = min(k, experts)
        rng = np.random.default_rng(experts * 1000 + k)
        router = TopKRouter(16, experts, k, rng=rng)
        x = rng.normal(0, 1, (tokens, 16)).astype(np.float32)
        r = router.route(x)
        assert r.indices.shape == (tokens, k)
        assert (r.indices >= 0).all() and (r.indices < experts).all()
        assert np.allclose(r.weights.sum(axis=-1), 1.0, atol=1e-5)
        assert r.expert_counts().sum() == tokens * k

    @given(st.integers(2, 8), st.integers(1, 4), st.integers(1, 24))
    @_settings
    def test_fused_unfused_equivalence(self, experts, k, tokens):
        k = min(k, experts)
        rng = np.random.default_rng(experts * 37 + k)
        layer = MoELayer(
            32, MoEConfig(num_experts=experts, top_k=k, expert_ffn_dim=8),
            rng=rng,
        )
        x = rng.normal(0, 1, (tokens, 32)).astype(np.float32)
        assert np.allclose(
            layer(x, "fused").hidden, layer(x, "unfused").hidden, atol=1e-4
        )


class TestRoutingMathProperties:
    @given(st.integers(1, 128), st.integers(1, 16), st.integers(0, 4096))
    @_settings
    def test_coverage_bounds(self, experts, k, tokens):
        k = min(k, experts)
        cov = expected_expert_coverage(experts, k, tokens)
        assert 0.0 <= cov <= experts
        if tokens >= 1:
            assert cov >= min(k, experts) - 1e-9 or tokens == 0

    @given(st.integers(1, 16), st.integers(0, 100_000))
    @_settings
    def test_imbalance_at_least_one(self, groups, assignments):
        assert expected_group_imbalance(groups, assignments) >= 1.0


class TestSpeculativeProperties:
    @given(st.floats(0.0, 0.95), st.integers(1, 16))
    @_settings
    def test_expected_tokens_bounds(self, alpha, k):
        e = expected_tokens_per_cycle(alpha, k)
        assert 1.0 <= e <= k + 1

    @given(st.floats(0.05, 0.9), st.integers(1, 8))
    @_settings
    def test_simulation_within_bounds(self, alpha, k):
        sim = simulate_accepted_tokens(alpha, k, 200,
                                       rng=np.random.default_rng(int(alpha * 100)))
        assert sim.min() >= 1 and sim.max() <= k + 1


class TestMetricsProperties:
    @given(st.integers(1, 128), st.integers(1, 4096), st.integers(2, 4096),
           st.floats(0.001, 10.0), st.floats(0.0, 100.0))
    @_settings
    def test_metric_formulas_consistent(self, b, i, o, ttft, decode):
        shape = GenerationShape(b, i, o)
        e2e = ttft + decode
        thr = throughput_eq2(shape, e2e)
        assert thr == pytest.approx(b * (i + o) / e2e)
        itl = itl_eq1(shape, ttft, e2e)
        assert itl >= 0
        assert itl * (b * o - 1) == pytest.approx(decode, abs=1e-9)


class TestRooflineProperties:
    @given(st.floats(1, 1e5), st.floats(1, 1e5), st.floats(1, 1e5))
    @_settings
    def test_efficiency_in_unit_interval(self, m, n, k):
        eff = gemm_efficiency(m, n, k, H100_SXM)
        assert 0 < eff <= H100_SXM.max_gemm_efficiency

    @given(st.floats(0, 1e15), st.floats(0, 1e12), st.integers(0, 100))
    @_settings
    def test_kernel_time_monotone_in_cost(self, flops, bytes_, launches):
        base = kernel_time(KernelCost(flops, bytes_, "fp16", launches), H100_SXM)
        more = kernel_time(KernelCost(flops * 2 + 1, bytes_ * 2 + 1, "fp16",
                                      launches + 1), H100_SXM)
        assert more > base or (base == more == 0)


class TestKVCacheProperties:
    @given(st.lists(st.tuples(st.integers(1, 200), st.integers(0, 100)),
                    min_size=1, max_size=20))
    @_settings
    def test_block_conservation(self, ops):
        """Allocate + grow + free any sequence of sequences: blocks are
        conserved and never double-allocated."""
        pool = PagedKVCache(num_blocks=256, block_size=16)
        live: dict[int, int] = {}
        for sid, (prompt, growth) in enumerate(ops):
            if not pool.can_allocate(prompt):
                continue
            pool.allocate(sid, prompt)
            live[sid] = prompt
            for _ in range(growth):
                if pool.can_append_slots(sid, 1):
                    pool.append_slots(sid, 1)
                    live[sid] += 1
        # all block tables disjoint
        seen: set[int] = set()
        for sid in live:
            blocks = pool.block_table(sid)
            assert not (set(blocks) & seen)
            seen.update(blocks)
            assert len(blocks) == -(-live[sid] // 16)
        assert pool.used_blocks == len(seen)
        for sid in list(live):
            pool.free(sid)
        assert pool.free_blocks == 256


class TestPrefixCacheProperties:
    @given(st.lists(
        st.tuples(st.integers(0, 3), st.integers(1, 6), st.booleans()),
        min_size=1, max_size=24,
    ))
    @_settings
    def test_shared_blocks_conserved(self, ops):
        """Arbitrary interleavings of prefix allocations (4 prompt
        families), growth and frees never corrupt refcounts: after freeing
        everything, all blocks return."""
        from repro.serving.prefix_cache import PrefixCachingKVCache

        pool = PrefixCachingKVCache(num_blocks=128, block_size=16)
        live: list[int] = []
        next_id = 0
        for family, blocks_n, do_free in ops:
            hashes = tuple(1000 * family + i for i in range(blocks_n))
            tokens = blocks_n * 16 + 5
            if pool.free_blocks >= pool.blocks_needed(tokens):
                pool.allocate_with_prefix(next_id, tokens, hashes)
                live.append(next_id)
                next_id += 1
            if do_free and live:
                pool.free(live.pop(0))
        for sid in live:
            pool.free(sid)
        assert pool.used_blocks == 0
        assert pool.free_blocks == 128

    @given(st.integers(1, 7), st.integers(1, 7))
    @_settings
    def test_hit_tokens_match_shared_prefix(self, a_blocks, b_blocks):
        from repro.serving.prefix_cache import PrefixCachingKVCache

        pool = PrefixCachingKVCache(num_blocks=64, block_size=16)
        pool.allocate_with_prefix(1, a_blocks * 16, tuple(range(a_blocks)))
        cached = pool.allocate_with_prefix(
            2, b_blocks * 16, tuple(range(b_blocks))
        )
        assert cached == min(a_blocks, b_blocks) * 16
