"""Tests for repro.tensor.attention (KV cache + GQA)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.config import AttentionConfig, AttentionKind
from repro.tensor.attention import Attention, KVCache


@pytest.fixture
def gqa_attn(rng):
    cfg = AttentionConfig(num_heads=4, num_kv_heads=2, head_dim=8)
    return Attention(cfg, hidden_size=32, rng=rng, max_positions=64)


class TestKVCache:
    def test_append_and_view(self):
        cache = KVCache(2, 16, 2, 8)
        k = np.ones((2, 3, 2, 8), dtype=np.float32)
        cache.append(k, k * 2)
        kk, vv = cache.view()
        assert kk.shape == (2, 3, 2, 8)
        assert (vv == 2).all()
        assert cache.length == 3

    def test_views_are_views(self):
        cache = KVCache(1, 8, 1, 4)
        cache.append(np.ones((1, 2, 1, 4), np.float32), np.ones((1, 2, 1, 4), np.float32))
        k, _ = cache.view()
        assert k.base is cache.k

    def test_overflow(self):
        cache = KVCache(1, 4, 1, 4)
        big = np.zeros((1, 5, 1, 4), np.float32)
        with pytest.raises(ValueError, match="overflow"):
            cache.append(big, big)

    def test_reset(self):
        cache = KVCache(1, 4, 1, 4)
        x = np.zeros((1, 2, 1, 4), np.float32)
        cache.append(x, x)
        cache.reset()
        assert cache.length == 0

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            KVCache(0, 4, 1, 4)


class TestAttention:
    def test_output_shape(self, gqa_attn, rng):
        x = rng.normal(0, 1, (2, 5, 32)).astype(np.float32)
        assert gqa_attn(x).shape == (2, 5, 32)

    def test_requires_3d(self, gqa_attn):
        with pytest.raises(ValueError):
            gqa_attn(np.zeros((5, 32)))

    def test_causality(self, gqa_attn, rng):
        """Changing a future token must not affect earlier outputs."""
        x = rng.normal(0, 1, (1, 6, 32)).astype(np.float32)
        out1 = gqa_attn(x)
        x2 = x.copy()
        x2[0, -1] += 10.0
        out2 = gqa_attn(x2)
        assert np.allclose(out1[0, :-1], out2[0, :-1], atol=1e-5)
        assert not np.allclose(out1[0, -1], out2[0, -1], atol=1e-3)

    def test_incremental_matches_full(self, gqa_attn, rng):
        """Prefill + decode through the cache == one full forward pass."""
        x = rng.normal(0, 1, (2, 6, 32)).astype(np.float32)
        full = gqa_attn(x)

        cache = gqa_attn.new_cache(2, 16)
        prefill = gqa_attn(x[:, :4], cache)
        step5 = gqa_attn(x[:, 4:5], cache)
        step6 = gqa_attn(x[:, 5:6], cache)

        assert np.allclose(prefill, full[:, :4], atol=1e-4)
        assert np.allclose(step5[:, 0], full[:, 4], atol=1e-4)
        assert np.allclose(step6[:, 0], full[:, 5], atol=1e-4)

    def test_mha_config(self, rng):
        cfg = AttentionConfig(num_heads=2, num_kv_heads=2, head_dim=8,
                              kind=AttentionKind.MHA)
        attn = Attention(cfg, 16, rng, max_positions=32)
        x = rng.normal(0, 1, (1, 3, 16)).astype(np.float32)
        assert attn(x).shape == (1, 3, 16)

    def test_mla_decompressed_execution(self, rng):
        cfg = AttentionConfig(
            num_heads=2, num_kv_heads=2, head_dim=24, kind=AttentionKind.MLA,
            kv_lora_rank=16, qk_rope_head_dim=8, qk_nope_head_dim=16,
            v_head_dim=24,
        )
        attn = Attention(cfg, 16, rng, max_positions=32)
        x = rng.normal(0, 1, (1, 4, 16)).astype(np.float32)
        assert attn(x).shape == (1, 4, 16)
