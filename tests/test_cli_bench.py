"""CLI tests for `repro bench` and `repro profile`.

Uses the cheapest real experiment (fig5) so record/check run the actual
pipeline end to end; the roofline-perturbation test is the acceptance
check that a physics change in the perf model is caught and attributed.
"""

from __future__ import annotations

import json

import pytest

from repro.core.cli import main
from repro.hardware.gpus import H100_SXM

FIG = "fig5"


def _bench(*argv: str) -> int:
    return main(["bench", *argv])


@pytest.fixture(scope="module")
def baseline_dir(tmp_path_factory):
    """A baseline store with FIG recorded once."""
    root = tmp_path_factory.mktemp("bench")
    assert _bench("--record", "--figs", FIG, "--dir", str(root),
                  "--note", "test baseline") == 0
    return root


class TestBenchRecordCheck:
    def test_record_writes_bench_file(self, baseline_dir):
        path = baseline_dir / f"BENCH_{FIG}.json"
        assert path.exists()
        data = json.loads(path.read_text())
        assert data["exp_id"] == FIG
        record = data["records"][0]
        assert record["note"] == "test baseline"
        assert record["fingerprint"]["sim"]

    def test_check_clean_on_unchanged_tree(self, baseline_dir, capsys):
        assert _bench("--check", "--figs", FIG, "--dir", str(baseline_dir),
                      "--no-overhead") == 0
        assert f"[ok] {FIG}" in capsys.readouterr().out

    def test_check_fails_on_perturbed_baseline(self, baseline_dir, tmp_path,
                                               capsys):
        # copy the store, nudge one recorded sim metric by 1e-6 rel
        path = tmp_path / f"BENCH_{FIG}.json"
        data = json.loads((baseline_dir / path.name).read_text())
        sim = data["records"][-1]["fingerprint"]["sim"]
        key = next(k for k, v in sim.items() if v)
        sim[key] *= 1 + 1e-6
        path.write_text(json.dumps(data))
        assert _bench("--check", "--figs", FIG, "--dir", str(tmp_path),
                      "--no-overhead") == 1
        err = capsys.readouterr().err
        assert FIG in err and key in err

    def test_check_fails_without_baseline(self, tmp_path):
        assert _bench("--check", "--figs", FIG, "--dir", str(tmp_path),
                      "--no-overhead") == 1

    def test_no_mode_is_usage_error(self, tmp_path):
        assert _bench("--dir", str(tmp_path)) == 2

    def test_trend_reports_trajectory(self, baseline_dir, capsys):
        assert _bench("--trend", "--figs", FIG, "--dir",
                      str(baseline_dir)) == 0
        out = capsys.readouterr().out
        assert FIG in out and "sim_time_total_s" in out


class TestRooflinePerturbation:
    def test_hbm_bandwidth_change_is_caught_and_named(self, baseline_dir,
                                                      capsys):
        """5% more HBM bandwidth must shift fig5's simulated times and
        fail the gate, naming the drifted figure and metric."""
        old = H100_SXM.mem_bandwidth_gbps
        object.__setattr__(H100_SXM, "mem_bandwidth_gbps", old * 1.05)
        try:
            code = _bench("--check", "--figs", FIG, "--dir",
                          str(baseline_dir), "--no-overhead")
        finally:
            object.__setattr__(H100_SXM, "mem_bandwidth_gbps", old)
        assert code == 1
        err = capsys.readouterr().err
        assert f"[{FIG}]" in err
        assert "sim drift" in err

    def test_gate_clean_again_after_restore(self, baseline_dir):
        assert _bench("--check", "--figs", FIG, "--dir", str(baseline_dir),
                      "--no-overhead") == 0


class TestProfileCommand:
    def test_profile_writes_folded_stack(self, tmp_path, capsys):
        out = tmp_path / "profile.folded"
        code = main(["profile", "--requests", "2", "--input-tokens", "64",
                     "--output-tokens", "8", "--out", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "Cost attribution" in text
        assert "speedup" in text
        folded = out.read_text()
        assert "components;decode;expert_ffn" in folded
        for line in folded.strip().splitlines():
            path, value = line.rsplit(" ", 1)
            assert float(value) >= 0
