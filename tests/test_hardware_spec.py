"""Tests for repro.hardware.spec and the concrete device catalog."""

from __future__ import annotations

import pytest

from repro.hardware.gpus import A100_SXM, CS3, H100_SXM, HARDWARE, get_hardware
from repro.hardware.spec import HardwareSpec, InterconnectSpec


class TestHardwareSpec:
    def test_peak_flops_lookup(self):
        assert H100_SXM.peak_flops_per_s("fp16") == pytest.approx(989.4e12)
        assert H100_SXM.peak_flops_per_s("fp8_e4m3") == pytest.approx(1978.9e12)

    def test_peak_flops_fallback_scaling(self):
        hw = HardwareSpec(name="x", peak_tflops={"fp16": 100.0},
                          memory_gb=16, mem_bandwidth_gbps=1000)
        assert hw.peak_flops_per_s("int8") == pytest.approx(200e12)
        assert hw.peak_flops_per_s("fp32") == pytest.approx(50e12)

    def test_mem_bytes_per_s_includes_efficiency(self):
        assert H100_SXM.mem_bytes_per_s == pytest.approx(3350e9 * 0.80)

    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareSpec(name="bad", peak_tflops={}, memory_gb=1,
                         mem_bandwidth_gbps=1)
        with pytest.raises(ValueError):
            HardwareSpec(name="bad", peak_tflops={"fp16": -1.0}, memory_gb=1,
                         mem_bandwidth_gbps=1)
        with pytest.raises(ValueError):
            HardwareSpec(name="bad", peak_tflops={"fp16": 1.0}, memory_gb=1,
                         mem_bandwidth_gbps=1, mem_efficiency=1.5)

    def test_interconnect_validation(self):
        with pytest.raises(ValueError):
            InterconnectSpec(name="x", link_bandwidth_gbps=0, latency_us=1)


class TestCatalog:
    def test_h100_datasheet_values(self):
        assert H100_SXM.memory_gb == 80.0
        assert H100_SXM.mem_bandwidth_gbps == 3350.0
        assert H100_SXM.interconnect.link_bandwidth_gbps == 450.0

    def test_fp8_doubles_fp16_on_h100(self):
        assert H100_SXM.peak_tflops["fp8_e4m3"] == pytest.approx(
            2 * H100_SXM.peak_tflops["fp16"], rel=0.01
        )

    def test_a100_has_no_fp8_speedup(self):
        assert A100_SXM.peak_tflops["fp8_e4m3"] == A100_SXM.peak_tflops["fp16"]

    def test_cs3_bandwidth_orders_of_magnitude(self):
        """The paper's CS-3 argument: memory bandwidth orders of magnitude
        above HBM."""
        assert CS3.mem_bandwidth_gbps / H100_SXM.mem_bandwidth_gbps > 1000

    def test_cs3_dataflow_no_kernel_launches(self):
        assert CS3.kernel_launch_us == 0.0

    def test_lookup_aliases(self):
        assert get_hardware("h100") is H100_SXM
        assert get_hardware("cs3") is CS3
        assert get_hardware(H100_SXM) is H100_SXM
        assert get_hardware("H100-SXM5-80GB") is H100_SXM

    def test_unknown_hardware(self):
        with pytest.raises(KeyError, match="known"):
            get_hardware("tpu-v5")

    def test_catalog_members(self):
        assert {"h100", "a100", "cs3"} <= set(HARDWARE)
