"""Tests for repro.hardware.roofline."""

from __future__ import annotations

import pytest

from repro.hardware.gpus import H100_SXM
from repro.hardware.roofline import (
    KernelCost,
    gemm_cost,
    gemm_efficiency,
    gemm_time,
    kernel_time,
)


class TestKernelCost:
    def test_add(self):
        a = KernelCost(10, 20, "fp16", 1)
        b = KernelCost(5, 5, "fp16", 2)
        c = a + b
        assert (c.flops, c.bytes, c.launches) == (15, 25, 3)

    def test_add_dtype_mismatch(self):
        with pytest.raises(ValueError):
            KernelCost(1, 1, "fp16") + KernelCost(1, 1, "fp8_e4m3")

    def test_scaled(self):
        c = KernelCost(10, 20, "fp16", 3).scaled(2.0)
        assert (c.flops, c.bytes, c.launches) == (20, 40, 3)


class TestGemmEfficiency:
    def test_saturates_with_m(self):
        effs = [gemm_efficiency(m, 4096, 4096, H100_SXM) for m in (1, 16, 256, 65536)]
        assert all(a < b for a, b in zip(effs, effs[1:]))
        assert effs[-1] <= H100_SXM.max_gemm_efficiency

    def test_small_m_is_inefficient(self):
        assert gemm_efficiency(1, 4096, 4096, H100_SXM) < 0.05

    def test_tile_quantization_penalty(self):
        aligned = gemm_efficiency(1024, 4096, 4096, H100_SXM)
        misaligned = gemm_efficiency(1024, 4096 + 1, 4096, H100_SXM)
        assert misaligned < aligned

    def test_tiny_inner_dims_penalised(self):
        assert gemm_efficiency(1024, 8, 4096, H100_SXM) < \
            gemm_efficiency(1024, 64, 4096, H100_SXM)

    def test_validation(self):
        with pytest.raises(ValueError):
            gemm_efficiency(0, 64, 64, H100_SXM)


class TestKernelTime:
    def test_memory_bound_kernel(self):
        cost = KernelCost(flops=0, bytes=2.68e9, dtype="fp16", launches=0)
        assert kernel_time(cost, H100_SXM) == pytest.approx(1e-3, rel=0.01)

    def test_compute_bound_kernel(self):
        cost = KernelCost(flops=989.4e12 * 0.7, bytes=0, dtype="fp16", launches=0)
        assert kernel_time(cost, H100_SXM) == pytest.approx(1.0, rel=0.01)

    def test_roofline_takes_max(self):
        both = KernelCost(flops=1e12, bytes=1e9, dtype="fp16", launches=0)
        only_c = KernelCost(flops=1e12, bytes=0, dtype="fp16", launches=0)
        only_m = KernelCost(flops=0, bytes=1e9, dtype="fp16", launches=0)
        t = kernel_time(both, H100_SXM)
        assert t == pytest.approx(
            max(kernel_time(only_c, H100_SXM), kernel_time(only_m, H100_SXM))
        )

    def test_launch_overhead_added(self):
        empty = KernelCost(flops=0, bytes=0, dtype="fp16", launches=10)
        assert kernel_time(empty, H100_SXM) == pytest.approx(10 * 4e-6)

    def test_quant_derate_applied(self):
        c16 = KernelCost(flops=1e14, bytes=0, dtype="fp16", launches=0)
        c8 = KernelCost(flops=1e14, bytes=0, dtype="fp8_e4m3", launches=0)
        t16 = kernel_time(c16, H100_SXM)
        t8 = kernel_time(c8, H100_SXM)
        # 2x peak derated by quant_gemm_derate: 2*0.65 = 1.3x speedup
        assert t16 / t8 == pytest.approx(2 * H100_SXM.quant_gemm_derate, rel=0.01)

    def test_bad_efficiency(self):
        with pytest.raises(ValueError):
            kernel_time(KernelCost(1, 1), H100_SXM, efficiency=0.0)


class TestGemmHelpers:
    def test_gemm_cost_accounting(self):
        c = gemm_cost(8, 16, 32, weight_bytes_per_el=2, act_bytes_per_el=2)
        assert c.flops == 2 * 8 * 16 * 32
        assert c.bytes == 32 * 16 * 2 + (8 * 32 + 8 * 16) * 2

    def test_gemm_time_positive_and_monotone(self):
        t_small = gemm_time(16, 4096, 4096, H100_SXM)
        t_big = gemm_time(4096, 4096, 4096, H100_SXM)
        assert 0 < t_small < t_big
