"""UNIT0xx rules: suffix-inferred dimensional analysis."""

import textwrap

from repro.lint.core import get_rule, lint_source
from repro.lint.units import AMBIGUOUS_NAMES, SUFFIX_UNITS

REL = "src/repro/perfmodel/fixture.py"


def _src(text: str) -> str:
    return textwrap.dedent(text).lstrip("\n")


def _lint(rule_id: str, text: str, rel: str = REL):
    return lint_source(_src(text), get_rule(rule_id), rel=rel)


class TestMixedUnits:
    def test_seconds_plus_microseconds(self):
        vs = _lint("UNIT001", """
            def f(t_s, overhead_us):
                return t_s + overhead_us
        """)
        assert len(vs) == 1
        assert "'s'" in vs[0].message and "'us'" in vs[0].message

    def test_conversion_clears_the_mix(self):
        assert _lint("UNIT001", """
            def f(t_s, overhead_us):
                return t_s + overhead_us * 1e-6
        """) == []

    def test_min_max_join_mixing(self):
        vs = _lint("UNIT001", """
            def f(t_s, size_bytes):
                return max(t_s, size_bytes)
        """)
        assert len(vs) == 1

    def test_comparison_mixing(self):
        vs = _lint("UNIT001", """
            def f(kv_bytes, budget_gb):
                return kv_bytes > budget_gb
        """)
        assert len(vs) == 1

    def test_assignment_target_suffix_checked(self):
        vs = _lint("UNIT001", """
            def f(weights_bytes):
                total_gb = weights_bytes + weights_bytes
                return total_gb
        """)
        assert len(vs) == 1

    def test_division_produces_rate_not_mismatch(self):
        assert _lint("UNIT001", """
            def f(size_bytes, t_s):
                return size_bytes / t_s
        """) == []

    def test_unit_declaration_joins_inference(self):
        vs = _lint("UNIT001", """
            comm = 0.0  # simlint: unit=s

            def f(overhead_us):
                return comm + overhead_us
        """)
        assert len(vs) == 1

    def test_out_of_scope_path_skipped(self):
        assert _lint("UNIT001", """
            def f(t_s, overhead_us):
                return t_s + overhead_us
        """, rel="src/repro/serving/engine.py") == []

    def test_suppression(self):
        assert _lint("UNIT001", """
            def f(t_s, overhead_us):
                return t_s + overhead_us  # simlint: disable=UNIT001
        """) == []


class TestReturnUnit:
    def test_flags_wrong_return_unit(self):
        vs = _lint("UNIT002", """
            def budget_bytes(pool_gb):
                return pool_gb + pool_gb
        """)
        assert len(vs) == 1
        assert "'bytes'" in vs[0].message

    def test_matching_return_clean(self):
        assert _lint("UNIT002", """
            def budget_bytes(pool_bytes):
                return pool_bytes + pool_bytes
        """) == []

    def test_time_suffix_means_seconds(self):
        vs = _lint("UNIT002", """
            def kernel_time(latency_us):
                return latency_us
        """)
        assert len(vs) == 1


class TestAmbiguousName:
    def test_flags_bare_assign_and_param(self):
        vs = _lint("UNIT003", """
            def f(latency):
                bw = 3.35
                return latency / bw
        """)
        assert len(vs) == 2
        assert vs[0].severity == "warning"

    def test_suffixed_names_clean(self):
        assert _lint("UNIT003", """
            def f(latency_s):
                bw_gbps = 3.35
                return latency_s / bw_gbps
        """) == []

    def test_every_ambiguous_name_has_no_suffix_unit(self):
        # the normalization targets must themselves be unit-less, or the
        # two rules would fight over the same name
        suffixes = tuple(s for s, _ in SUFFIX_UNITS)
        for name in AMBIGUOUS_NAMES:
            assert not name.endswith(suffixes)
