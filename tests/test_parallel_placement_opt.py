"""Tests for repro.parallel.placement_opt (activation-aware EP placement)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.zoo import get_model
from repro.parallel.expert_parallel import round_robin_placement
from repro.parallel.placement_opt import (
    balanced_placement,
    compare_placements,
    placement_imbalance,
)
from repro.workloads.multimodal import run_activation_study


class TestPlacementImbalance:
    def test_uniform_loads_are_balanced(self):
        p = round_robin_placement(8, 4)
        assert placement_imbalance(p, np.ones(8)) == pytest.approx(1.0)

    def test_hot_pair_on_one_device(self):
        # contiguous placement puts the two hottest experts together
        loads = np.array([10, 10, 1, 1, 1, 1, 1, 1], dtype=float)
        p = round_robin_placement(8, 4)
        assert placement_imbalance(p, loads) == pytest.approx(20 / 6.5)

    def test_zero_loads(self):
        p = round_robin_placement(4, 2)
        assert placement_imbalance(p, np.zeros(4)) == 1.0

    def test_shape_validation(self):
        p = round_robin_placement(4, 2)
        with pytest.raises(ValueError):
            placement_imbalance(p, np.ones(5))
        with pytest.raises(ValueError):
            placement_imbalance(p, np.array([1, -1, 1, 1]))


class TestBalancedPlacement:
    def test_memory_balance_enforced(self):
        loads = np.arange(16, dtype=float)
        p = balanced_placement(loads, 4)
        assert p.experts_per_device().tolist() == [4, 4, 4, 4]

    def test_separates_hot_experts(self):
        loads = np.array([10, 10, 1, 1, 1, 1, 1, 1], dtype=float)
        p = balanced_placement(loads, 4)
        # the two hot experts must land on different devices
        assert p.device_of_expert[0] != p.device_of_expert[1]
        assert placement_imbalance(p, loads) < placement_imbalance(
            round_robin_placement(8, 4), loads
        )

    def test_never_worse_than_default(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            loads = rng.exponential(1.0, 32)
            cmp = compare_placements(loads, 4)
            assert cmp["optimized_imbalance"] <= cmp["default_imbalance"] + 1e-9

    def test_uniform_loads_stay_balanced(self):
        p = balanced_placement(np.ones(8), 2)
        assert placement_imbalance(p, np.ones(8)) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            balanced_placement(np.ones(7), 2)
        with pytest.raises(ValueError):
            balanced_placement(np.array([]), 2)
        with pytest.raises(ValueError):
            balanced_placement(np.array([1.0, -1.0]), 2)


class TestEndToEnd:
    def test_fixes_molmoe_skew(self):
        """The Fig. 15 workflow: measure activation frequencies, then place
        experts to flatten EP load."""
        tracker = run_activation_study(
            get_model("MolmoE-1B"), rng=np.random.default_rng(3),
            max_routed_tokens=15_000,
        )
        loads = tracker.heatmap()[0].astype(float)
        cmp = compare_placements(loads, 8)
        assert cmp["default_imbalance"] > 1.15  # the skew is real
        assert cmp["optimized_imbalance"] < 1.05  # and fixable


class TestSurvivingImbalance:
    def _placement(self, replicas=2):
        from repro.parallel.expert_parallel import (
            replicated_round_robin_placement,
        )

        return replicated_round_robin_placement(8, 4, replicas=replicas)

    def test_healthy_uniform_loads_are_balanced(self):
        from repro.parallel.placement_opt import surviving_imbalance

        imbalance, lost = surviving_imbalance(
            self._placement(), np.ones(8), set())
        assert imbalance == pytest.approx(1.0)
        assert lost == []

    def test_losing_a_device_skews_survivors(self):
        from repro.parallel.placement_opt import surviving_imbalance

        imbalance, lost = surviving_imbalance(
            self._placement(), np.ones(8), {0})
        assert imbalance > 1.0
        assert lost == []  # replicas cover the loss

    def test_single_copy_loss_names_the_lost_experts(self):
        from repro.parallel.placement_opt import surviving_imbalance

        placement = self._placement(replicas=1)
        _, lost = surviving_imbalance(placement, np.ones(8), {1})
        assert lost == placement.experts_on_device(1)

    def test_no_survivors_is_infinite(self):
        from repro.parallel.placement_opt import surviving_imbalance

        imbalance, _ = surviving_imbalance(
            self._placement(), np.ones(8), {0, 1, 2, 3})
        assert imbalance == np.inf

    def test_zero_load_is_neutral(self):
        from repro.parallel.placement_opt import surviving_imbalance

        imbalance, _ = surviving_imbalance(
            self._placement(), np.zeros(8), {0})
        assert imbalance == 1.0

    def test_validation(self):
        from repro.parallel.placement_opt import surviving_imbalance

        with pytest.raises(ValueError):
            surviving_imbalance(self._placement(), np.ones(7), set())
        with pytest.raises(ValueError):
            surviving_imbalance(self._placement(),
                                np.array([1.0] * 7 + [-1.0]), set())


class TestReplicatedBalancedPlacement:
    def test_balances_each_replica_pass(self):
        from repro.parallel.placement_opt import (
            placement_imbalance,
            replicated_balanced_placement,
        )

        rng = np.random.default_rng(0)
        loads = rng.exponential(1.0, size=16)
        placement = replicated_balanced_placement(loads, 4, replicas=2)
        assert placement.replication_factor == 2
        for devices in placement.devices_of_expert:
            assert len(set(devices)) == 2
        # the primary pass is the plain LPT placement: well balanced
        assert placement_imbalance(placement.primary(), loads) < 1.2
