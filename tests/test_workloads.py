"""Tests for repro.workloads (generators, traces, multimodal)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.zoo import get_model
from repro.workloads.generator import (
    PAPER_BATCH_SIZES,
    PAPER_SEQUENCE_LENGTHS,
    FixedShapeWorkload,
    LengthDistribution,
    synthetic_hidden_states,
    synthetic_token_ids,
)
from repro.workloads.multimodal import (
    BALANCED_ROUTER_BIAS_STD,
    UNBALANCED_ROUTER_BIAS_STD,
    MMEStream,
    router_bias_std_for,
    run_activation_study,
)
from repro.workloads.traces import BurstSpec, burst_arrivals, poisson_arrivals


class TestPaperConstants:
    def test_sequence_lengths(self):
        assert PAPER_SEQUENCE_LENGTHS == (128, 256, 512, 1024, 2048)

    def test_batch_sizes(self):
        assert PAPER_BATCH_SIZES == (1, 16, 32, 64)


class TestFixedShape:
    def test_requests(self):
        wl = FixedShapeWorkload(batch_size=4, input_tokens=100, output_tokens=20)
        reqs = wl.requests(arrival_time=1.5, start_id=10)
        assert len(reqs) == 4
        assert all(r.prompt_tokens == 100 for r in reqs)
        assert all(r.arrival_time == 1.5 for r in reqs)
        assert [r.request_id for r in reqs] == [10, 11, 12, 13]

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedShapeWorkload(0, 10, 10)
        with pytest.raises(ValueError):
            FixedShapeWorkload(1, 10, 10, num_images=-1)


class TestLengthDistribution:
    def test_sample_bounds(self, rng):
        dist = LengthDistribution(min_tokens=16, max_tokens=512)
        pairs = dist.sample(200, rng)
        assert all(16 <= i <= 512 and 16 <= o <= 512 for i, o in pairs)

    def test_mean_approximately_preserved(self, rng):
        dist = LengthDistribution(mean_input=400, mean_output=100, sigma=0.4)
        pairs = dist.sample(3000, rng)
        assert np.mean([p[0] for p in pairs]) == pytest.approx(400, rel=0.1)

    def test_requests_with_arrivals(self, rng):
        dist = LengthDistribution()
        reqs = dist.requests(5, rng, arrival_times=np.arange(5.0))
        assert [r.arrival_time for r in reqs] == [0, 1, 2, 3, 4]
        with pytest.raises(ValueError):
            dist.requests(5, rng, arrival_times=np.arange(4.0))

    def test_sample_validation(self, rng):
        with pytest.raises(ValueError):
            LengthDistribution().sample(0, rng)


class TestSynthetic:
    def test_hidden_states(self, rng):
        x = synthetic_hidden_states(rng, 10, 32)
        assert x.shape == (10, 32)
        assert x.dtype == np.float32

    def test_token_ids_in_vocab(self, rng):
        ids = synthetic_token_ids(rng, 4, 16, vocab_size=100)
        assert ids.shape == (4, 16)
        assert ids.min() >= 0 and ids.max() < 100

    def test_token_ids_zipf_skew(self, rng):
        ids = synthetic_token_ids(rng, 1, 20_000, vocab_size=1000)
        counts = np.bincount(ids.ravel(), minlength=1000)
        # Zipf: the most common token dominates the median one
        assert counts.max() > 20 * np.median(counts[counts > 0])

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            synthetic_hidden_states(rng, 0, 8)
        with pytest.raises(ValueError):
            synthetic_token_ids(rng, 1, 4, vocab_size=1)


class TestTraces:
    def test_poisson_rate(self, rng):
        times = poisson_arrivals(10.0, 4000, rng)
        assert len(times) == 4000
        assert (np.diff(times) > 0).all()
        assert times[-1] == pytest.approx(400, rel=0.1)

    def test_poisson_validation(self, rng):
        with pytest.raises(ValueError):
            poisson_arrivals(0, 5, rng)

    def test_bursts(self):
        times = burst_arrivals(BurstSpec(size=3, period_s=2.0), 2, start=1.0)
        assert times.tolist() == [1.0, 1.0, 1.0, 3.0, 3.0, 3.0]

    def test_burst_validation(self):
        with pytest.raises(ValueError):
            BurstSpec(size=0, period_s=1.0)
        with pytest.raises(ValueError):
            burst_arrivals(BurstSpec(1, 1.0), 0)


class TestMultimodal:
    def test_stream_token_volume(self, rng):
        stream = MMEStream(num_samples=100, image_tokens=576, mean_text_tokens=48)
        lengths = stream.sample_lengths(rng)
        assert len(lengths) == 100
        assert (lengths > 576).all()
        assert lengths.mean() == pytest.approx(576 + 48, rel=0.25)

    def test_bias_calibration_lookup(self):
        assert router_bias_std_for(get_model("DeepSeek-VL2")) == BALANCED_ROUTER_BIAS_STD
        assert router_bias_std_for(get_model("MolmoE-1B")) == UNBALANCED_ROUTER_BIAS_STD

    def test_bias_lookup_rejects_dense(self, tiny_dense_model):
        with pytest.raises(ValueError):
            router_bias_std_for(tiny_dense_model)

    def test_activation_study_fig15_contrast(self):
        """The paper's headline: MolmoE peak ~1M vs DeepSeek ~290K."""
        rng = np.random.default_rng(7)
        balanced = run_activation_study(get_model("DeepSeek-VL2-Tiny"),
                                        rng=rng, max_routed_tokens=20_000)
        rng = np.random.default_rng(7)
        skewed = run_activation_study(get_model("MolmoE-1B"),
                                      rng=rng, max_routed_tokens=20_000)
        assert skewed.peak_activation() > 2 * balanced.peak_activation()
        assert skewed.overall_metrics().gini > balanced.overall_metrics().gini

    def test_activation_study_counts_scale_to_stream(self):
        tracker = run_activation_study(get_model("MolmoE-1B"),
                                       stream=MMEStream(num_samples=200),
                                       rng=np.random.default_rng(1),
                                       max_routed_tokens=5_000)
        hm = tracker.heatmap()
        # per-layer counts ≈ total_tokens * top_k
        per_layer = hm.sum(axis=1)
        assert per_layer[0] == pytest.approx(tracker.tokens_seen * 8, rel=0.05)

    def test_activation_study_rejects_dense(self, tiny_dense_model):
        with pytest.raises(ValueError):
            run_activation_study(tiny_dense_model)
