"""Edge-path coverage across modules: error branches and rare interleavings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.gpus import H100_SXM
from repro.models.config import MoEConfig
from repro.models.zoo import OLMOE_1B_7B, get_model
from repro.moe.layer import MoELayer
from repro.perfmodel.inference import InferencePerfModel
from repro.serving.engine import ServingEngine
from repro.serving.events import Event, EventLog, EventType
from repro.serving.request import Request, SamplingParams
from repro.serving.scheduler import SchedulerConfig
from repro.workloads.multimodal import MMEStream, run_activation_study


class TestEventLog:
    def test_out_of_order_rejected(self):
        log = EventLog()
        log.record(Event(1.0, EventType.ARRIVAL))
        with pytest.raises(ValueError, match="time order"):
            log.record(Event(0.5, EventType.DECODE))

    def test_busy_time_and_peak_utilization(self):
        log = EventLog()
        log.record(Event(1.0, EventType.PREFILL, duration_s=0.5, kv_utilization=0.2))
        log.record(Event(2.0, EventType.DECODE, duration_s=0.25, kv_utilization=0.6))
        assert log.total_busy_time() == pytest.approx(0.75)
        assert log.peak_kv_utilization() == pytest.approx(0.6)
        assert log.num_iterations == 2

    def test_empty_log(self):
        log = EventLog()
        assert log.peak_kv_utilization() == 0.0
        assert log.num_iterations == 0


class TestMoELayerCombinations:
    def test_capacity_with_unfused_mode(self, rng):
        cfg = MoEConfig(num_experts=4, top_k=2, expert_ffn_dim=16)
        layer = MoELayer(32, cfg, rng=rng, expert_bias_std=1.5)
        x = rng.normal(0, 1, (40, 32)).astype(np.float32)
        fused = layer(x, mode="fused", capacity_factor=0.5)
        unfused = layer(x, mode="unfused", capacity_factor=0.5)
        assert np.allclose(fused.hidden, unfused.hidden, atol=1e-4)

    def test_quantized_weight_storage_layer(self, rng, tiny_moe):
        layer = MoELayer(64, tiny_moe, rng=rng, weight_dtype="int8")
        x = rng.normal(0, 1, (10, 64)).astype(np.float32)
        out = layer(x)
        assert np.isfinite(out.hidden).all()


class TestActivationStudyEdges:
    def test_small_budget_single_chunk(self):
        tracker = run_activation_study(
            get_model("MolmoE-1B"),
            stream=MMEStream(num_samples=50),
            rng=np.random.default_rng(0),
            max_routed_tokens=500,
            chunk=10_000,  # budget below chunk size
        )
        # counts rescaled to the full (small) stream
        hm = tracker.heatmap()
        assert hm.sum() > 0
        assert tracker.tokens_seen > 500  # full stream volume recorded

    def test_custom_router_hidden(self):
        tracker = run_activation_study(
            get_model("DeepSeek-VL2-Tiny"),
            stream=MMEStream(num_samples=20),
            rng=np.random.default_rng(1),
            router_hidden=32,
            max_routed_tokens=1_000,
        )
        assert tracker.heatmap().shape == (11, 64)  # 12 layers, first dense


class TestEngineInterleavings:
    def test_decode_first_with_chunked_prefill(self):
        pm = InferencePerfModel(OLMOE_1B_7B, H100_SXM)
        eng = ServingEngine(
            pm,
            scheduler_config=SchedulerConfig(
                policy="decode_first",
                enable_chunked_prefill=True,
                chunk_size=128,
            ),
        )
        eng.submit(Request(request_id=0, prompt_tokens=300,
                           sampling=SamplingParams(max_tokens=8)))
        eng.submit(Request(request_id=1, prompt_tokens=300,
                           sampling=SamplingParams(max_tokens=8),
                           arrival_time=0.05))
        res = eng.run()
        assert all(r.is_finished for r in res.requests)
        assert all(r.generated_tokens == 8 for r in res.requests)

    def test_prefix_caching_with_preemption_rehits(self):
        """A preempted request re-prefills — through the prefix cache its
        own parked blocks hit again."""
        pm = InferencePerfModel(OLMOE_1B_7B, H100_SXM)
        eng = ServingEngine(pm, kv_pool_tokens=2048,
                            enable_prefix_caching=True)
        for i in range(4):
            eng.submit(Request(
                request_id=i, prompt_tokens=512,
                sampling=SamplingParams(max_tokens=200),
                prompt_block_hashes=tuple(range(100 * i, 100 * i + 32)),
            ))
        res = eng.run()
        assert all(r.is_finished for r in res.requests)
        if res.num_preemptions:
            assert res.kv_hit_rate > 0

    def test_zero_arrival_gap_batch_prefill(self):
        pm = InferencePerfModel(OLMOE_1B_7B, H100_SXM)
        eng = ServingEngine(pm)
        for i in range(6):
            eng.submit(Request(request_id=i, prompt_tokens=100,
                               sampling=SamplingParams(max_tokens=4)))
        res = eng.run()
        prefills = res.log.of_type(EventType.PREFILL)
        # 6 x 100 = 600 tokens fit one 8192-token prefill iteration
        assert len(prefills) == 1
        assert prefills[0].num_tokens == 600


class TestPipelinePartitionEdges:
    def test_stage_of_layer_out_of_range(self):
        from repro.models.zoo import MIXTRAL_8X7B
        from repro.parallel.pipeline import partition_layers

        part = partition_layers(MIXTRAL_8X7B, 2)
        with pytest.raises(IndexError):
            part.stage_of_layer(99)

    def test_pp_equals_layers(self):
        from repro.models.zoo import OLMOE_1B_7B as m
        from repro.parallel.pipeline import partition_layers

        part = partition_layers(m, m.num_layers)
        assert part.num_stages == m.num_layers
        assert all(
            part.boundaries[i + 1] - part.boundaries[i] == 1
            for i in range(m.num_layers)
        )
