"""REG0xx rules: experiments <-> baselines <-> docs <-> CLI drift."""

import pathlib
import textwrap

from repro.lint.core import LintProject, get_rule
from repro.lint.registry import (
    PSEUDO_BASELINES,
    bench_baseline_ids,
    registered_experiment_ids,
)

REPO = pathlib.Path(__file__).resolve().parents[1]

_CLI = '''
"""Usage:

    repro bench [--check]
    repro lint [--check]
"""


def build_parser(sub):
    sub.add_parser("bench")
    sub.add_parser("lint")
'''


def _project(tmp_path, *, experiments=("figx",), baselines=("figx",),
             documented=("figx",), cli: str = _CLI) -> LintProject:
    exp_dir = tmp_path / "src/repro/experiments"
    exp_dir.mkdir(parents=True)
    for i, exp_id in enumerate(experiments):
        (exp_dir / f"exp{i}.py").write_text(textwrap.dedent(f"""
            @experiment("{exp_id}")
            def run():
                pass
        """))
    for bid in baselines:
        (tmp_path / f"BENCH_{bid}.json").write_text("{}\n")
    (tmp_path / "EXPERIMENTS.md").write_text(
        "| id | verdict |\n|---|---|\n"
        + "".join(f"| {d} | reproduced |\n" for d in documented))
    cli_path = tmp_path / "src/repro/core/cli.py"
    cli_path.parent.mkdir(parents=True)
    cli_path.write_text(cli)
    return LintProject(tmp_path)


def _run(rule_id: str, project: LintProject):
    return list(get_rule(rule_id).run(project))


class TestParsers:
    def test_decorators_parsed_statically(self, tmp_path):
        project = _project(tmp_path, experiments=("figx", "figy"),
                           baselines=("figx", "figy"),
                           documented=("figx", "figy"))
        ids = registered_experiment_ids(project)
        assert set(ids) == {"figx", "figy"}
        path, line = ids["figx"]
        assert path.startswith("src/repro/experiments/")

    def test_bench_files_globbed(self, tmp_path):
        project = _project(tmp_path, baselines=("figx", "wallclock"))
        assert set(bench_baseline_ids(project)) == {"figx", "wallclock"}


class TestBaselineCoverage:
    def test_clean_when_every_experiment_has_a_baseline(self, tmp_path):
        assert _run("REG001", _project(tmp_path)) == []

    def test_missing_baseline_flagged(self, tmp_path):
        vs = _run("REG001", _project(tmp_path, baselines=()))
        assert len(vs) == 1
        assert "BENCH_figx.json" in vs[0].message
        assert "--record" in vs[0].message


class TestStaleBaseline:
    def test_stale_bench_file_flagged(self, tmp_path):
        vs = _run("REG002", _project(tmp_path, baselines=("figx", "ghost")))
        assert len(vs) == 1
        assert vs[0].path == "BENCH_ghost.json"

    def test_pseudo_baselines_exempt(self, tmp_path):
        project = _project(tmp_path,
                           baselines=("figx",) + tuple(PSEUDO_BASELINES))
        assert _run("REG002", project) == []


class TestExperimentsDoc:
    def test_undocumented_experiment_flagged(self, tmp_path):
        vs = _run("REG003", _project(tmp_path, documented=()))
        assert len(vs) == 1
        assert "EXPERIMENTS.md" in vs[0].message

    def test_word_boundary_match(self, tmp_path):
        # "figx10" in the doc must not satisfy experiment "figx"
        vs = _run("REG003", _project(tmp_path, documented=("figx10",)))
        assert len(vs) == 1

    def test_missing_doc_file_flagged(self, tmp_path):
        project = _project(tmp_path)
        (tmp_path / "EXPERIMENTS.md").unlink()
        vs = _run("REG003", project)
        assert any("missing" in v.message for v in vs)


class TestCliDoc:
    def test_documented_subcommands_clean(self, tmp_path):
        assert _run("REG004", _project(tmp_path)) == []

    def test_undocumented_subcommand_flagged(self, tmp_path):
        cli = _CLI.replace('    repro lint [--check]\n', '')
        vs = _run("REG004", _project(tmp_path, cli=cli))
        assert len(vs) == 1
        assert "'lint'" in vs[0].message


class TestFamilyDoc:
    """REG005: every registered id with a FAMILY_DOCS prefix must appear
    in the family's dedicated doc (drift fixtures use the real
    ``ext_fleet`` mapping)."""

    def _fleet_project(self, tmp_path, *, doc: str | None,
                       experiments=("ext_fleet_capacity",)) -> LintProject:
        project = _project(tmp_path, experiments=experiments,
                           baselines=experiments, documented=experiments)
        if doc is not None:
            docs = tmp_path / "docs"
            docs.mkdir()
            (docs / "fleet.md").write_text(doc)
        return project

    def test_clean_when_doc_names_every_family_member(self, tmp_path):
        project = self._fleet_project(
            tmp_path, doc="| ext_fleet_capacity | scaling |\n")
        assert _run("REG005", project) == []

    def test_family_member_missing_from_doc_flagged(self, tmp_path):
        project = self._fleet_project(
            tmp_path, doc="all about fleets\n",
            experiments=("ext_fleet_capacity", "ext_fleet_policy"))
        vs = _run("REG005", project)
        assert len(vs) == 2
        assert all("docs/fleet.md" in v.message for v in vs)

    def test_missing_doc_file_flagged_once(self, tmp_path):
        project = self._fleet_project(tmp_path, doc=None)
        vs = _run("REG005", project)
        assert len(vs) == 1
        assert "missing" in vs[0].message

    def test_no_family_members_no_doc_needed(self, tmp_path):
        # a repo without ext_fleet experiments owes no docs/fleet.md
        assert _run("REG005", _project(tmp_path)) == []

    def test_word_boundary_match(self, tmp_path):
        # "ext_fleet_capacity2" must not satisfy "ext_fleet_capacity"
        project = self._fleet_project(
            tmp_path, doc="| ext_fleet_capacity2 | nope |\n")
        assert len(_run("REG005", project)) == 1


class TestRepoIsDriftFree:
    def test_real_registry_clean(self):
        project = LintProject(REPO)
        for rule_id in ("REG001", "REG002", "REG003", "REG004", "REG005"):
            assert _run(rule_id, project) == [], rule_id

    def test_real_repo_has_experiments_and_baselines(self):
        project = LintProject(REPO)
        ids = registered_experiment_ids(project)
        baselines = bench_baseline_ids(project)
        assert len(ids) >= 20
        assert set(ids) <= set(baselines)
