"""Unit tests for repro.faults.schedule — seeded fault schedules."""

from __future__ import annotations

import math

import pytest

from repro.faults.schedule import (
    PERMANENT,
    FaultEvent,
    FaultKind,
    FaultSchedule,
)


class TestFaultEvent:
    def test_heal_time_and_permanence(self):
        e = FaultEvent(time=1.0, kind=FaultKind.DEVICE_LOSS, duration_s=0.5)
        assert e.heal_time == 1.5
        assert not e.is_permanent
        p = FaultEvent(time=1.0, kind=FaultKind.DEVICE_LOSS)
        assert p.is_permanent
        assert math.isinf(p.heal_time)
        assert "permanent" in p.describe()

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(time=-1.0, kind=FaultKind.DEVICE_LOSS)
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, kind=FaultKind.DEVICE_LOSS, duration_s=0.0)
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, kind=FaultKind.LINK_DEGRADE, magnitude=0.5)
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, kind=FaultKind.KV_PRESSURE, magnitude=1.5)
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, kind=FaultKind.KV_PRESSURE, magnitude=0.0)


class TestFaultSchedule:
    def test_events_are_time_sorted(self):
        late = FaultEvent(time=2.0, kind=FaultKind.DEVICE_LOSS)
        early = FaultEvent(time=1.0, kind=FaultKind.KV_PRESSURE,
                           magnitude=0.5)
        schedule = FaultSchedule(events=(late, early))
        assert [e.time for e in schedule] == [1.0, 2.0]

    def test_is_armed(self):
        assert not FaultSchedule().is_armed
        assert FaultSchedule(events=(FaultEvent(
            time=0.0, kind=FaultKind.DEVICE_LOSS),)).is_armed

    def test_events_between_is_half_open(self):
        e = FaultEvent(time=1.0, kind=FaultKind.DEVICE_LOSS)
        schedule = FaultSchedule(events=(e,))
        assert schedule.events_between(0.0, 1.0) == [e]
        assert schedule.events_between(1.0, 2.0) == []  # t0 exclusive
        assert schedule.events_between(0.0, 0.999) == []

    def test_next_event_time_includes_heals(self):
        e = FaultEvent(time=1.0, kind=FaultKind.DEVICE_LOSS, duration_s=0.5)
        schedule = FaultSchedule(events=(e,))
        assert schedule.next_event_time(0.0) == 1.0
        assert schedule.next_event_time(1.0) == 1.5  # the heal
        assert schedule.next_event_time(1.5) is None

    def test_next_event_time_skips_permanent_heals(self):
        e = FaultEvent(time=1.0, kind=FaultKind.DEVICE_LOSS)
        assert FaultSchedule(events=(e,)).next_event_time(1.0) is None


class TestGenerate:
    def test_same_seed_is_identical(self):
        a = FaultSchedule.generate(seed=3, horizon_s=10.0, rate_per_s=5.0,
                                   num_targets=4)
        b = FaultSchedule.generate(seed=3, horizon_s=10.0, rate_per_s=5.0,
                                   num_targets=4)
        assert a.events == b.events
        assert a.seed == 3

    def test_different_seeds_differ(self):
        a = FaultSchedule.generate(seed=3, horizon_s=10.0, rate_per_s=5.0)
        b = FaultSchedule.generate(seed=4, horizon_s=10.0, rate_per_s=5.0)
        assert a.events != b.events

    def test_events_stay_inside_horizon(self):
        schedule = FaultSchedule.generate(seed=0, horizon_s=5.0,
                                          rate_per_s=8.0, num_targets=4)
        assert schedule.is_armed
        assert all(0 < e.time <= 5.0 for e in schedule)
        assert all(0 <= e.target < 4 for e in schedule)

    def test_rate_zero_is_unarmed(self):
        schedule = FaultSchedule.generate(seed=0, horizon_s=5.0,
                                          rate_per_s=0.0)
        assert not schedule.is_armed

    def test_magnitudes_respect_kind_contracts(self):
        schedule = FaultSchedule.generate(seed=1, horizon_s=50.0,
                                          rate_per_s=4.0)
        kinds = {e.kind for e in schedule}
        # long horizon hits every engine-scope kind; REPLICA_LOSS is
        # fleet-scope and deliberately absent from the default mix
        assert kinds == set(FaultKind) - {FaultKind.REPLICA_LOSS}
        for e in schedule:
            if e.kind is FaultKind.LINK_DEGRADE:
                assert e.magnitude >= 1.0
            elif e.kind is FaultKind.KV_PRESSURE:
                assert 0 < e.magnitude <= 0.9

    def test_permanent_fraction_extremes(self):
        none = FaultSchedule.generate(seed=0, horizon_s=20.0, rate_per_s=3.0,
                                      permanent_fraction=0.0)
        assert not any(e.is_permanent for e in none)
        every = FaultSchedule.generate(seed=0, horizon_s=20.0, rate_per_s=3.0,
                                       permanent_fraction=1.0)
        assert all(e.is_permanent for e in every)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule.generate(seed=0, horizon_s=0.0, rate_per_s=1.0)
        with pytest.raises(ValueError):
            FaultSchedule.generate(seed=0, horizon_s=1.0, rate_per_s=-1.0)
        with pytest.raises(ValueError):
            FaultSchedule.generate(seed=0, horizon_s=1.0, rate_per_s=1.0,
                                   num_targets=0)
        with pytest.raises(ValueError):
            FaultSchedule.generate(seed=0, horizon_s=1.0, rate_per_s=1.0,
                                   mix={FaultKind.DEVICE_LOSS: 0.0})

    def test_describe_lists_events(self):
        schedule = FaultSchedule.generate(seed=2, horizon_s=4.0,
                                          rate_per_s=2.0)
        text = schedule.describe()
        assert "seed 2" in text
        assert len(text.splitlines()) == len(schedule) + 1
        assert FaultSchedule().describe() == "no faults scheduled"
