"""Request-scoped tracing: causal timelines, exemplars, Chrome export."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.faults.invariants import run_digest
from repro.hardware.gpus import H100_SXM
from repro.models.zoo import get_model
from repro.obs.harness import reference_serving_run, traced_serving_run
from repro.obs.instrument import Instrumentation
from repro.obs.reqtrace import RequestTracer, trace_id_for
from repro.obs.trace import filter_trace_events
from repro.perfmodel.inference import InferencePerfModel
from repro.serving.engine import ServingEngine
from repro.serving.request import Request, SamplingParams

MODEL = "OLMoE-1B-7B"


@pytest.fixture(scope="module")
def traced():
    return traced_serving_run(num_requests=6, input_tokens=128,
                              output_tokens=32)


@pytest.fixture(scope="module")
def preempting():
    """The KV-pressure run of test_serving_engine, instrumented."""
    obs = Instrumentation.on()
    perf = InferencePerfModel(get_model(MODEL), H100_SXM,
                              instrumentation=obs)
    engine = ServingEngine(perf, kv_pool_tokens=2048, instrumentation=obs,
                           rng=np.random.default_rng(0))
    for i in range(8):
        engine.submit(Request(
            request_id=i, prompt_tokens=400,
            sampling=SamplingParams(max_tokens=200), arrival_time=0.0,
        ))
    return engine.run(), obs


@pytest.fixture(scope="module")
def chaotic():
    """A fault storm traced end to end (kills, backoffs, readmissions)."""
    from repro.faults.harness import chaos_serving_run
    from repro.obs.slo import fault_storm_config

    obs = Instrumentation.on()
    run = chaos_serving_run(fault_storm_config(), instrumentation=obs)
    return run, obs


def _names(timeline):
    return [row["name"] for row in timeline]


class TestLifecycleTimeline:
    def test_every_finished_request_has_a_complete_causal_chain(self, traced):
        result, obs = traced
        for req in result.requests:
            rows = obs.reqtrace.timeline(req.request_id)
            names = _names(rows)
            assert names[0] == "admit"
            assert names[1] == "queue.wait"
            assert "prefill.chunk" in names
            assert "first_token" in names
            assert "decode.step" in names
            assert names[-1] == "finish"
            # causal order: seq dense, timestamps monotone
            assert [row["seq"] for row in rows] == list(range(len(rows)))
            assert all(a["t0"] <= b["t0"] for a, b in zip(rows, rows[1:]))
            # every span closed; no dangling waits
            assert all(row["t1"] is not None for row in rows)

    def test_admit_attrs_and_first_token_carry_request_facts(self, traced):
        result, obs = traced
        req = result.requests[0]
        rows = obs.reqtrace.timeline(req.request_id)
        admit = rows[0]
        assert admit["attrs"]["prompt_tokens"] == req.prompt_tokens
        assert admit["attrs"]["arrival_time"] == req.arrival_time
        first = next(r for r in rows if r["name"] == "first_token")
        assert first["attrs"]["ttft_s"] == pytest.approx(req.ttft)
        assert first["t0"] == pytest.approx(req.arrival_time + req.ttft)

    def test_causes_link_each_entry_to_its_trigger(self, traced):
        result, obs = traced
        rows = obs.reqtrace.timeline(result.requests[0].request_id)
        by_name = {row["name"]: row for row in rows}
        assert by_name["admit"]["cause"] == "arrival"
        assert by_name["queue.wait"]["cause"] == "admit"

    def test_unknown_request_raises(self, traced):
        _, obs = traced
        with pytest.raises(KeyError):
            obs.reqtrace.timeline(10_000)
        with pytest.raises(KeyError):
            obs.reqtrace.render_timeline(10_000)
        with pytest.raises(KeyError):
            obs.reqtrace.request_for("req-999999")

    def test_render_timeline_is_an_aligned_table(self, traced):
        result, obs = traced
        rid = result.requests[0].request_id
        text = obs.reqtrace.render_timeline(rid)
        assert f"request {rid} ({trace_id_for(rid)})" in text
        assert "finish" in text and "queue.wait" in text


class TestExemplarChain:
    def test_p99_ttft_exemplar_resolves_to_a_traced_request(self, traced):
        result, obs = traced
        hist = obs.metrics.histogram("ttft_seconds")
        exemplar = hist.exemplar_for_quantile(0.99)
        assert exemplar is not None
        rid = obs.reqtrace.request_for(exemplar.trace_id)
        req = next(r for r in result.requests if r.request_id == rid)
        # the exemplar's value is that request's recorded TTFT, and its
        # timeline is complete — the outlier-bucket -> timeline hook
        assert exemplar.value == pytest.approx(req.ttft)
        assert _names(obs.reqtrace.timeline(rid))[-1] == "finish"

    def test_every_latency_exemplar_points_at_a_real_trace(self, traced):
        _, obs = traced
        for name in ("ttft_seconds", "e2e_latency_seconds", "itl_seconds"):
            for exemplar in obs.metrics.histogram(name).exemplars():
                rid = obs.reqtrace.request_for(exemplar.trace_id)
                assert obs.reqtrace.trace_id(rid) == exemplar.trace_id


class TestPreemptionAndFaults:
    def test_preempted_request_records_preempt_and_requeue(self, preempting):
        result, obs = preempting
        preempted = [r for r in result.requests if r.num_preemptions > 0]
        assert preempted  # the scenario must actually preempt
        for req in preempted:
            names = _names(obs.reqtrace.timeline(req.request_id))
            assert "preempt" in names
            idx = names.index("preempt")
            assert names[idx + 1] == "requeue.wait"
            assert names[-1] == "finish"

    def test_fault_killed_request_records_backoff_and_readmission(
            self, chaotic):
        run, obs = chaotic
        retried = [r for r in run.result.requests if r.fault_retries > 0]
        assert retried  # the storm must actually kill and retry
        for req in retried:
            names = _names(obs.reqtrace.timeline(req.request_id))
            assert "fault.kill" in names
            idx = names.index("fault.kill")
            assert names[idx + 1] == "fault.backoff"
            # the retry re-enters admission: a second admit/queue.wait pair
            assert names.count("admit") >= 2

    def test_terminal_failures_record_their_reason(self, chaotic):
        run, obs = chaotic
        failed = [r for r in run.result.requests if r.is_failed]
        assert failed
        for req in failed:
            rows = obs.reqtrace.timeline(req.request_id)
            assert rows[-1]["name"] == "fail"
            assert rows[-1]["attrs"]["reason"] == req.failure_reason


class TestDecodeCoalescing:
    def _req(self, rid=0):
        return Request(request_id=rid, prompt_tokens=8,
                       sampling=SamplingParams(max_tokens=4))

    def test_contiguous_steps_merge(self):
        tracer = RequestTracer()
        req = self._req()
        tracer.on_decode(req, 0.0, 0.1, batch_size=4)
        tracer.on_decode(req, 0.1, 0.2, batch_size=5)
        tracer.on_decode(req, 0.2, 0.3, batch_size=5)
        (entry,) = tracer.trace(0).entries
        assert entry.name == "decode.step"
        assert entry.attrs["steps"] == 3
        assert entry.attrs["last_batch_size"] == 5
        assert (entry.t0, entry.t1) == (0.0, 0.3)

    def test_gap_splits_the_span(self):
        tracer = RequestTracer()
        req = self._req()
        tracer.on_decode(req, 0.0, 0.1, batch_size=4)
        tracer.on_decode(req, 0.5, 0.6, batch_size=4)  # non-contiguous
        assert len(tracer.trace(0).entries) == 2

    def test_coalescing_can_be_disabled(self):
        tracer = RequestTracer(coalesce_decode=False)
        req = self._req()
        tracer.on_decode(req, 0.0, 0.1, batch_size=4)
        tracer.on_decode(req, 0.1, 0.2, batch_size=4)
        assert len(tracer.trace(0).entries) == 2


class TestChromeExport:
    def test_one_track_per_request_with_balanced_spans(self, traced, tmp_path):
        result, obs = traced
        path = obs.reqtrace.write(tmp_path / "reqtrace.json")
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        assert len(metas) == result.num_requests
        assert {e["tid"] for e in metas} == {
            1000 + r.request_id for r in result.requests}
        begins = sum(1 for e in events if e["ph"] == "B")
        ends = sum(1 for e in events if e["ph"] == "E")
        assert begins == ends > 0

    def test_filter_by_request_id_keeps_one_lifecycle(self, traced):
        result, obs = traced
        rid = result.requests[0].request_id
        events = filter_trace_events(obs.reqtrace.chrome_events(),
                                     request_id=rid)
        tids = {e["tid"] for e in events if e["ph"] != "M"}
        assert tids == {1000 + rid}
        assert any(e["name"] == "finish" for e in events)

    def test_filter_by_span_name_regex(self, traced):
        _, obs = traced
        events = filter_trace_events(obs.reqtrace.chrome_events(),
                                     match="prefill")
        payload = [e for e in events if e["ph"] not in ("M",)]
        assert payload
        assert all("prefill" in e["name"] for e in payload
                   if e["ph"] == "B")


class TestDisabledPathIdentity:
    def test_reqtrace_and_slo_do_not_perturb_the_run(self):
        from repro.obs.slo import DEFAULT_SLOS, SloTracker

        def run(instrumentation):
            return reference_serving_run(
                num_requests=6, input_tokens=128, output_tokens=32,
                arrival_interval=0.002, instrumentation=instrumentation)

        bare = run_digest(run(None))
        off = run_digest(run(Instrumentation.off()))
        full = run_digest(run(Instrumentation.on(
            slo=SloTracker(DEFAULT_SLOS))))
        assert bare == off == full
