"""SLO / ITL edge cases for ServingResult.

Covers the paths a healthy burst run never exercises: zero finished
requests, single-token generations (ITL undefined), and exact boundary
equality against the SLO thresholds.
"""

from __future__ import annotations

import pytest

from repro.serving.engine import ServingResult
from repro.serving.events import EventLog
from repro.serving.request import Request, RequestState, SamplingParams


def _req(request_id=0, prompt=16, max_tokens=4, arrival=0.0,
         first_token=None, finish=None, generated=0,
         finished=False) -> Request:
    req = Request(request_id=request_id, prompt_tokens=prompt,
                  sampling=SamplingParams(max_tokens=max_tokens),
                  arrival_time=arrival)
    req.first_token_time = first_token
    req.finish_time = finish
    req.generated_tokens = generated
    if finished:
        req.state = RequestState.FINISHED
    return req


def _result(requests, makespan=1.0) -> ServingResult:
    return ServingResult(requests=requests, makespan=makespan, log=EventLog())


class TestZeroFinished:
    def test_slo_attainment_is_zero(self):
        result = _result([_req()])
        assert result.slo_attainment(ttft_slo_s=1.0) == 0.0
        assert result.slo_attainment(ttft_slo_s=1.0, itl_slo_s=0.1) == 0.0

    def test_goodput_is_zero(self):
        result = _result([_req()])
        assert result.goodput_tok_s(ttft_slo_s=1.0) == 0.0

    def test_empty_result(self):
        result = _result([])
        assert result.slo_attainment(ttft_slo_s=1.0) == 0.0
        with pytest.raises(ValueError, match="first token"):
            result.p50_ttft()

    def test_itl_percentiles_raise(self):
        result = _result([_req()])
        with pytest.raises(ValueError, match="ITL undefined"):
            _ = result.p50_itl
        with pytest.raises(ValueError, match="ITL undefined"):
            _ = result.p99_itl


class TestSingleToken:
    """A one-token generation has a TTFT but no inter-token gaps."""

    def _single(self):
        return _req(first_token=0.5, finish=0.5, generated=1, max_tokens=1,
                    finished=True)

    def test_mean_itl_is_undefined(self):
        assert ServingResult._mean_itl(self._single()) is None

    def test_itl_slo_does_not_reject(self):
        # an undefined ITL cannot violate the ITL SLO
        result = _result([self._single()])
        assert result.slo_attainment(ttft_slo_s=1.0, itl_slo_s=1e-9) == 1.0
        assert result.goodput_tok_s(ttft_slo_s=1.0, itl_slo_s=1e-9) == \
            pytest.approx(1.0)

    def test_itl_percentiles_raise_but_ttft_works(self):
        result = _result([self._single()])
        assert result.p50_ttft() == pytest.approx(0.5)
        with pytest.raises(ValueError, match="ITL undefined"):
            _ = result.p99_itl

    def test_mixed_population_uses_defined_itls_only(self):
        multi = _req(request_id=1, first_token=0.1, finish=0.5, generated=5,
                     finished=True)  # itl = 0.4 / 4 = 0.1
        result = _result([self._single(), multi])
        assert result.p50_itl == pytest.approx(0.1)
        assert result.p99_itl == pytest.approx(0.1)


class TestBoundaryEquality:
    def test_ttft_exactly_at_slo_attains(self):
        req = _req(first_token=0.5, finish=1.0, generated=2, finished=True)
        result = _result([req])
        assert result.slo_attainment(ttft_slo_s=0.5) == 1.0
        assert result.slo_attainment(ttft_slo_s=0.5 - 1e-9) == 0.0

    def test_itl_exactly_at_slo_attains(self):
        # ttft 0.1, e2e 0.5, 5 tokens -> mean itl == 0.1 exactly
        req = _req(first_token=0.1, finish=0.5, generated=5, finished=True)
        result = _result([req])
        itl = ServingResult._mean_itl(req)
        assert itl == pytest.approx(0.1)
        assert result.slo_attainment(ttft_slo_s=1.0, itl_slo_s=itl) == 1.0
        assert result.slo_attainment(ttft_slo_s=1.0,
                                     itl_slo_s=itl * 0.999) == 0.0

    def test_invalid_slos_rejected(self):
        result = _result([_req()])
        with pytest.raises(ValueError):
            result.slo_attainment(ttft_slo_s=0.0)
        with pytest.raises(ValueError):
            result.slo_attainment(ttft_slo_s=1.0, itl_slo_s=0.0)


class TestItlProperties:
    def test_percentiles_from_engine_run(self):
        from repro.obs.harness import reference_serving_run

        result = reference_serving_run(num_requests=4, input_tokens=64,
                                       output_tokens=8)
        assert 0 < result.p50_itl <= result.p99_itl
        # burst workload: every request decodes in lockstep
        assert result.p50_itl == pytest.approx(result.p99_itl, rel=0.2)

    def test_goodput_never_exceeds_generation_throughput(self):
        from repro.obs.harness import reference_serving_run

        result = reference_serving_run(num_requests=4, input_tokens=64,
                                       output_tokens=8)
        goodput = result.goodput_tok_s(ttft_slo_s=1e9, itl_slo_s=1e9)
        assert goodput == pytest.approx(result.generation_throughput_tok_s)
