"""Tests for repro.serving.engine (discrete-event simulation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.gpus import H100_SXM
from repro.models.zoo import MIXTRAL_8X7B, OLMOE_1B_7B, get_model
from repro.perfmodel.inference import InferencePerfModel
from repro.serving.engine import ServingEngine, serve_static_batch
from repro.serving.events import EventType
from repro.serving.request import Request, SamplingParams
from repro.serving.scheduler import SchedulerConfig


@pytest.fixture(scope="module")
def olmoe_pm():
    return InferencePerfModel(OLMOE_1B_7B, H100_SXM)


def make_request(rid, prompt=128, out=32, arrival=0.0):
    return Request(request_id=rid, prompt_tokens=prompt,
                   sampling=SamplingParams(max_tokens=out), arrival_time=arrival)


class TestBasicRuns:
    def test_single_request(self, olmoe_pm):
        eng = ServingEngine(olmoe_pm)
        eng.submit(make_request(0))
        res = eng.run()
        req = res.requests[0]
        assert req.is_finished
        assert req.generated_tokens == 32
        assert 0 < req.ttft < req.e2e_latency
        assert res.makespan == pytest.approx(req.e2e_latency)

    def test_batch_all_finish(self, olmoe_pm):
        eng = ServingEngine(olmoe_pm)
        for i in range(8):
            eng.submit(make_request(i))
        res = eng.run()
        assert all(r.is_finished for r in res.requests)
        assert res.total_tokens == 8 * 160

    def test_event_log_ordering(self, olmoe_pm):
        eng = ServingEngine(olmoe_pm)
        eng.submit(make_request(0, out=4))
        res = eng.run()
        times = [e.time for e in res.log.events]
        assert times == sorted(times)
        kinds = [e.type for e in res.log.events]
        assert kinds[0] is EventType.ARRIVAL
        assert EventType.PREFILL in kinds
        assert kinds[-1] is EventType.FINISH

    def test_decode_iterations_counted(self, olmoe_pm):
        eng = ServingEngine(olmoe_pm)
        eng.submit(make_request(0, out=10))
        res = eng.run()
        decodes = res.log.of_type(EventType.DECODE)
        assert len(decodes) == 9  # first token comes from prefill

    def test_max_tokens_one_finishes_at_prefill(self, olmoe_pm):
        eng = ServingEngine(olmoe_pm)
        eng.submit(make_request(0, out=1))
        res = eng.run()
        assert res.requests[0].is_finished
        assert res.log.of_type(EventType.DECODE) == []


class TestAgainstClosedForm:
    def test_static_batch_matches_closed_form(self, olmoe_pm):
        """No contention: engine == analytical model within 2%."""
        metrics, _ = serve_static_batch(olmoe_pm, 16, 256, 64)
        closed = olmoe_pm.generate(16, 256, 64)
        assert metrics.ttft_s == pytest.approx(closed.ttft_s, rel=0.02)
        assert metrics.e2e_latency_s == pytest.approx(closed.e2e_latency_s, rel=0.02)


class TestArrivalsAndContention:
    def test_staggered_arrivals_preserve_order(self, olmoe_pm):
        eng = ServingEngine(olmoe_pm)
        eng.submit(make_request(0, arrival=0.0, out=64))
        eng.submit(make_request(1, arrival=10.0, out=4))
        res = eng.run()
        r0, r1 = res.requests
        assert r0.first_token_time < 10.0
        assert r1.first_token_time > 10.0
        assert res.makespan > 10.0

    def test_idle_gap_advances_clock(self, olmoe_pm):
        eng = ServingEngine(olmoe_pm)
        eng.submit(make_request(0, arrival=5.0, out=2))
        res = eng.run()
        assert res.requests[0].first_scheduled_time >= 5.0

    def test_kv_pressure_causes_preemption_but_completes(self):
        pm = InferencePerfModel(OLMOE_1B_7B, H100_SXM)
        eng = ServingEngine(pm, kv_pool_tokens=2048)
        for i in range(8):
            eng.submit(make_request(i, prompt=400, out=200))
        res = eng.run()
        assert all(r.is_finished for r in res.requests)
        assert res.num_preemptions > 0
        assert all(r.generated_tokens == 200 for r in res.requests)

    def test_oversized_request_rejected_at_submit(self, olmoe_pm):
        eng = ServingEngine(olmoe_pm, kv_pool_tokens=1024)
        with pytest.raises(ValueError, match="KV slots"):
            eng.submit(make_request(0, prompt=2000, out=100))

    def test_engine_requires_room_for_cache(self):
        pm = InferencePerfModel(MIXTRAL_8X7B, H100_SXM)  # weights > 80GB
        with pytest.raises(ValueError, match="OOM"):
            ServingEngine(pm)

    def test_early_eos(self, olmoe_pm):
        eng = ServingEngine(olmoe_pm, rng=np.random.default_rng(0))
        eng.submit(Request(
            request_id=0, prompt_tokens=64,
            sampling=SamplingParams(max_tokens=500, ignore_eos=False,
                                    eos_probability=0.2),
        ))
        res = eng.run()
        assert res.requests[0].is_finished
        assert res.requests[0].generated_tokens < 500


class TestThroughputAccounting:
    def test_throughput_definitions(self, olmoe_pm):
        _, res = serve_static_batch(olmoe_pm, 4, 100, 50)
        assert res.throughput_tok_s == pytest.approx(
            4 * 150 / res.makespan
        )
        assert res.generation_throughput_tok_s == pytest.approx(
            4 * 50 / res.makespan
        )

    def test_percentiles(self, olmoe_pm):
        _, res = serve_static_batch(olmoe_pm, 8, 64, 16)
        assert res.p99_ttft() >= res.mean_ttft() * 0.99

    def test_vlm_requests_cost_more(self):
        pm = InferencePerfModel(get_model("DeepSeek-VL2-Tiny"), H100_SXM)
        eng_text = ServingEngine(pm)
        eng_text.submit(make_request(0, prompt=128, out=8))
        plain = eng_text.run().makespan

        pm2 = InferencePerfModel(get_model("DeepSeek-VL2-Tiny"), H100_SXM)
        eng_img = ServingEngine(pm2)
        eng_img.submit(Request(request_id=0, prompt_tokens=128,
                               sampling=SamplingParams(max_tokens=8),
                               num_images=1))
        with_img = eng_img.run().makespan
        assert with_img > plain


class TestChunkedPrefillThroughEngine:
    def test_long_prompt_chunks_into_iterations(self, olmoe_pm):
        from repro.serving.events import EventType

        eng = ServingEngine(
            olmoe_pm,
            scheduler_config=SchedulerConfig(enable_chunked_prefill=True,
                                             chunk_size=256),
        )
        eng.submit(make_request(0, prompt=1000, out=4))
        res = eng.run()
        prefills = res.log.of_type(EventType.PREFILL)
        assert len(prefills) == 4  # 256+256+256+232
        assert sum(e.num_tokens for e in prefills) == 1000
        assert res.requests[0].is_finished

    def test_first_token_only_after_last_chunk(self, olmoe_pm):
        from repro.serving.events import EventType

        eng = ServingEngine(
            olmoe_pm,
            scheduler_config=SchedulerConfig(enable_chunked_prefill=True,
                                             chunk_size=128),
        )
        eng.submit(make_request(0, prompt=500, out=2))
        res = eng.run()
        prefills = res.log.of_type(EventType.PREFILL)
        assert res.requests[0].first_token_time == pytest.approx(
            prefills[-1].time
        )

    def test_chunked_matches_whole_prompt_token_totals(self, olmoe_pm):
        whole = ServingEngine(olmoe_pm)
        whole.submit(make_request(0, prompt=700, out=8))
        r_whole = whole.run()

        pm2 = InferencePerfModel(OLMOE_1B_7B, H100_SXM)
        chunked = ServingEngine(
            pm2, scheduler_config=SchedulerConfig(enable_chunked_prefill=True,
                                                  chunk_size=200),
        )
        chunked.submit(make_request(0, prompt=700, out=8))
        r_chunked = chunked.run()
        assert r_whole.total_tokens == r_chunked.total_tokens
        # chunking adds per-iteration overheads: slightly slower end-to-end
        assert r_chunked.makespan >= r_whole.makespan


class TestSLOMetrics:
    def test_generous_slo_full_attainment(self, olmoe_pm):
        _, res = serve_static_batch(olmoe_pm, 8, 128, 16)
        assert res.slo_attainment(ttft_slo_s=100.0) == 1.0
        assert res.goodput_tok_s(100.0) == pytest.approx(
            res.generation_throughput_tok_s
        )

    def test_impossible_slo_zero(self, olmoe_pm):
        _, res = serve_static_batch(olmoe_pm, 8, 128, 16)
        assert res.slo_attainment(ttft_slo_s=1e-9) == 0.0
        assert res.goodput_tok_s(1e-9) == 0.0

    def test_itl_slo_filters(self, olmoe_pm):
        _, res = serve_static_batch(olmoe_pm, 8, 128, 16)
        generous = res.slo_attainment(100.0, itl_slo_s=10.0)
        strict = res.slo_attainment(100.0, itl_slo_s=1e-9)
        assert generous == 1.0 and strict == 0.0

    def test_attainment_degrades_under_queueing(self, olmoe_pm):
        """Staggered latecomers behind a long prefill miss tight TTFT SLOs."""
        eng = ServingEngine(olmoe_pm)
        for i in range(32):
            eng.submit(make_request(i, prompt=2048, out=8, arrival=0.0))
        res = eng.run()
        tight = res.slo_attainment(ttft_slo_s=res.mean_ttft() * 0.5)
        assert tight < 1.0

    def test_validation(self, olmoe_pm):
        _, res = serve_static_batch(olmoe_pm, 2, 64, 4)
        with pytest.raises(ValueError):
            res.slo_attainment(0.0)
        with pytest.raises(ValueError):
            res.slo_attainment(1.0, itl_slo_s=0.0)


class TestResultValueCaches:
    """ServingResult memoizes its percentile source lists after drain."""

    def test_ttft_values_cached_and_consistent(self, olmoe_pm):
        _, res = serve_static_batch(olmoe_pm, 4, 128, 8)
        first = res._ttft_values()
        assert res._ttft_values() is first  # memoized list, not a rebuild
        assert res.p50_ttft() == res.p50_ttft()

    def test_all_value_caches_match_requests(self, olmoe_pm):
        _, res = serve_static_batch(olmoe_pm, 4, 128, 8)
        assert res._e2e_values() is res._e2e_values()
        assert res._itl_values() is res._itl_values()
        assert len(res._ttft_values()) == len(res.requests)

    def test_empty_result_still_raises(self, olmoe_pm):
        from repro.serving.engine import ServingResult
        from repro.serving.events import EventLog

        empty = ServingResult(requests=[], makespan=0.0, log=EventLog())
        with pytest.raises(ValueError):
            empty._ttft_values()
        with pytest.raises(ValueError):
            empty._ttft_values()  # failure is not cached either
