"""Reusable invariant-checking harness for engine runs.

Wraps :mod:`repro.faults.invariants` into a drop-in replacement for
``engine.run()`` that audits the engine between every iteration, so the
property-based suites (healthy and chaos) share one checked drain loop.
"""

from __future__ import annotations

from repro.faults.invariants import (
    InvariantViolation,
    check_engine_invariants,
    check_final_invariants,
    run_digest,
)
from repro.serving.engine import ServingEngine, ServingResult

__all__ = [
    "InvariantViolation",
    "check_engine_invariants",
    "check_final_invariants",
    "run_digest",
    "drain_checked",
]


def drain_checked(engine: ServingEngine,
                  max_iterations: int = 100_000) -> ServingResult:
    """Run ``engine`` to drain, auditing every invariant along the way.

    Equivalent to ``engine.run()`` except :func:`check_engine_invariants`
    runs between every pair of iterations and
    :func:`check_final_invariants` at drain.  Raises
    :class:`InvariantViolation` on the first breach.
    """
    check_engine_invariants(engine)
    prev_clock = engine.clock
    iterations = 0
    while engine.step():
        check_engine_invariants(engine, prev_clock)
        prev_clock = engine.clock
        iterations += 1
        if iterations > max_iterations:
            raise AssertionError(
                f"engine did not drain within {max_iterations} iterations"
            )
    # the engine is drained: run() performs zero further steps and just
    # assembles the ServingResult (and fires run-end observability)
    result = engine.run()
    check_final_invariants(result, engine)
    return result
