"""Tests for repro.perfmodel.phases (step time composition)."""

from __future__ import annotations

import pytest

from repro.hardware.gpus import H100_SXM
from repro.models.zoo import (
    DEEPSEEK_VL2_TINY,
    MIXTRAL_8X7B,
    OLMOE_1B_7B,
    QWEN3_0_6B,
)
from repro.optim.quantization import FP8_CONFIG
from repro.parallel.plan import ParallelPlan
from repro.perfmodel.phases import StepModel


@pytest.fixture(scope="module")
def olmoe_steps():
    return StepModel(OLMOE_1B_7B, H100_SXM)


class TestStepBreakdown:
    def test_components_present(self, olmoe_steps):
        bd = olmoe_steps.step_breakdown(16, 16, 512, "decode")
        assert {"attention", "moe_ffn", "embedding", "lm_head"} <= set(bd.components)
        assert bd.total > 0
        assert bd.components["moe_ffn"] > 0

    def test_dense_model_has_no_moe_time(self):
        steps = StepModel(QWEN3_0_6B, H100_SXM)
        bd = steps.step_breakdown(4, 4, 128, "decode")
        assert bd.components["moe_ffn"] == 0
        assert bd.components["dense_ffn"] > 0

    def test_phase_validation(self, olmoe_steps):
        with pytest.raises(ValueError):
            olmoe_steps.step_breakdown(4, 4, 128, "train")
        with pytest.raises(ValueError):
            olmoe_steps.step_breakdown(0, 4, 128, "decode")

    def test_total_is_sum(self, olmoe_steps):
        bd = olmoe_steps.step_breakdown(8, 8, 256, "decode")
        assert bd.total == pytest.approx(
            sum(bd.components.values()) + bd.comm + bd.pipeline + bd.overhead
        )


class TestMonotonicity:
    def test_decode_grows_with_batch(self, olmoe_steps):
        times = [olmoe_steps.decode_step_time(b, 1024) for b in (1, 8, 64, 256)]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_decode_grows_with_context(self, olmoe_steps):
        times = [olmoe_steps.decode_step_time(16, c) for c in (128, 1024, 8192)]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_prefill_grows_with_prompt(self, olmoe_steps):
        times = [olmoe_steps.prefill_time(4, n) for n in (128, 512, 2048)]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_decode_throughput_sublinear_in_batch(self, olmoe_steps):
        """Batching amortises weight streaming: time(64) << 64*time(1)."""
        t1 = olmoe_steps.decode_step_time(1, 1024)
        t64 = olmoe_steps.decode_step_time(64, 1024)
        assert t64 < 16 * t1

    def test_validation(self, olmoe_steps):
        with pytest.raises(ValueError):
            olmoe_steps.decode_step_time(4, 0)
        with pytest.raises(ValueError):
            olmoe_steps.prefill_time(4, 0)


class TestParallelEffects:
    def test_tp_speeds_up_decode(self):
        t1 = StepModel(MIXTRAL_8X7B, H100_SXM).decode_step_time(16, 1024)
        t4 = StepModel(MIXTRAL_8X7B, H100_SXM,
                       plan=ParallelPlan(tp=4)).decode_step_time(16, 1024)
        assert t4 < t1
        assert t4 > t1 / 4  # communication prevents perfect scaling

    def test_tp_adds_comm(self):
        bd = StepModel(MIXTRAL_8X7B, H100_SXM,
                       plan=ParallelPlan(tp=4)).step_breakdown(16, 16, 1024, "decode")
        assert bd.comm > 0

    def test_pp_adds_pipeline_hops_not_speed(self):
        t1 = StepModel(MIXTRAL_8X7B, H100_SXM).decode_step_time(16, 1024)
        bd = StepModel(MIXTRAL_8X7B, H100_SXM,
                       plan=ParallelPlan(pp=4)).step_breakdown(16, 16, 1024, "decode")
        assert bd.pipeline > 0
        assert bd.total == pytest.approx(t1, rel=0.15)

    def test_ep_adds_all_to_all(self):
        bd = StepModel(MIXTRAL_8X7B, H100_SXM,
                       plan=ParallelPlan(tp=4, ep=4)).step_breakdown(
                           16, 16, 1024, "decode")
        bd_tp = StepModel(MIXTRAL_8X7B, H100_SXM,
                          plan=ParallelPlan(tp=4)).step_breakdown(
                              16, 16, 1024, "decode")
        assert bd.comm > 0
        # EP's imbalance makes the expert phase slower than pure TP's
        assert bd.components["moe_ffn"] > bd_tp.components["moe_ffn"]

    def test_too_many_devices_rejected(self):
        with pytest.raises(ValueError, match="devices"):
            StepModel(MIXTRAL_8X7B, H100_SXM, plan=ParallelPlan(tp=16))


class TestOptimizationEffects:
    def test_fused_faster_than_unfused(self):
        fused = StepModel(MIXTRAL_8X7B, H100_SXM, fused_moe=True)
        naive = StepModel(MIXTRAL_8X7B, H100_SXM, fused_moe=False)
        assert fused.decode_step_time(16, 1024) < naive.decode_step_time(16, 1024)

    def test_fp8_faster_than_fp16(self):
        f16 = StepModel(MIXTRAL_8X7B, H100_SXM)
        f8 = StepModel(MIXTRAL_8X7B, H100_SXM, quant=FP8_CONFIG)
        assert f8.decode_step_time(16, 1024) < f16.decode_step_time(16, 1024)

    def test_vision_encode_time(self):
        steps = StepModel(DEEPSEEK_VL2_TINY, H100_SXM)
        t1 = steps.vision_encode_time(1)
        t8 = steps.vision_encode_time(8)
        assert 0 < t1 < t8
        assert steps.vision_encode_time(0) == 0.0

    def test_vision_encode_zero_for_llm(self):
        assert StepModel(OLMOE_1B_7B, H100_SXM).vision_encode_time(4) == 0.0
