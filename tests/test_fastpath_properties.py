"""Property-based tests: every fast path is bit-identical to the slow path.

The perf-opt layers (step cache, vectorized sweeps) are exact memo /
mirror implementations — not approximations — so the property under test
is float *equality*, not closeness.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.common import metrics_row, metrics_rows, perf_model
from repro.hardware.gpus import H100_SXM
from repro.models.zoo import get_model
from repro.moe.router import TopKRouter
from repro.perfmodel import stepcache
from repro.perfmodel.phases import StepModel

_settings = settings(max_examples=30, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])

_MODELS = ("OLMoE-1B-7B", "Mixtral-8x7B", "DeepSeek-V2-Lite")


class TestStepCacheExactness:
    @given(st.sampled_from(_MODELS), st.integers(1, 128),
           st.integers(1, 4096), st.sampled_from(["prefill", "decode"]))
    @_settings
    def test_cached_equals_uncached(self, model, batch, ctx, phase):
        steps = StepModel(get_model(model), H100_SXM)
        stepcache.configure(enabled=True)
        stepcache.clear()
        try:
            if phase == "prefill":
                warm = steps.prefill_time(batch, ctx)
                hit = steps.prefill_time(batch, ctx)
            else:
                warm = steps.decode_step_time(batch, ctx)
                hit = steps.decode_step_time(batch, ctx)
            stepcache.configure(enabled=False)
            stepcache.clear()
            if phase == "prefill":
                cold = steps.prefill_time(batch, ctx)
            else:
                cold = steps.decode_step_time(batch, ctx)
            assert warm == hit == cold
        finally:
            stepcache.configure(enabled=True)

    @given(st.sampled_from(_MODELS), st.integers(1, 64), st.integers(1, 2048))
    @_settings
    def test_breakdown_components_identical(self, model, batch, ctx):
        steps = StepModel(get_model(model), H100_SXM)
        stepcache.configure(enabled=True)
        stepcache.clear()
        try:
            cached = steps.step_breakdown(batch, batch, ctx, phase="decode")
            uncached = steps._compute_step_breakdown(batch, batch, ctx,
                                                     "decode", None)
            assert cached.components == uncached.components
            assert cached.total == uncached.total
        finally:
            stepcache.configure(enabled=True)


class TestVectorizedExactness:
    @given(st.sampled_from(_MODELS),
           st.lists(st.tuples(st.integers(1, 128), st.integers(16, 4096),
                              st.integers(1, 512)),
                    min_size=1, max_size=6))
    @_settings
    def test_sweep_equals_scalar_loop(self, model, shapes):
        pm = perf_model(get_model(model))
        fast = metrics_rows(pm, shapes)
        slow = [metrics_row(pm, b, i, o) for b, i, o in shapes]
        assert fast == slow


class TestRouteCountsExactness:
    @given(st.integers(2, 24), st.integers(1, 12), st.integers(1, 256),
           st.integers(0, 2**31 - 1))
    @_settings
    def test_counts_equal_full_route(self, num_experts, top_k, tokens, seed):
        top_k = min(top_k, num_experts)
        rng = np.random.default_rng(seed)
        router = TopKRouter(16, num_experts, top_k,
                            rng=np.random.default_rng(seed))
        x = rng.normal(size=(tokens, 16)).astype(np.float32)
        assert np.array_equal(router.route_counts(x),
                              router.route(x).expert_counts())

    @given(st.integers(0, 2**31 - 1))
    @_settings
    def test_counts_equal_under_ties(self, seed):
        # lattice-valued weights and inputs force exact logit ties at the
        # top-k boundary; both paths share the same argpartition call, so
        # the winning set must match even then
        rng = np.random.default_rng(seed)
        router = TopKRouter(8, 16, 4, rng=np.random.default_rng(seed))
        router.weight = rng.integers(-1, 2, size=(8, 16)).astype(np.float32)
        router.bias = np.zeros(16, dtype=np.float32)
        x = rng.integers(-1, 2, size=(64, 8)).astype(np.float32)
        logits = router.logits(x)
        assert np.unique(logits).size < logits.size  # ties really occur
        assert np.array_equal(router.route_counts(x),
                              router.route(x).expert_counts())
