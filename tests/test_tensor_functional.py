"""Tests for repro.tensor.functional."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor.functional import (
    apply_rope,
    causal_mask,
    gelu,
    log_softmax,
    rms_norm,
    rope_frequencies,
    silu,
    softmax,
    swiglu,
    top_k_indices,
)


class TestSoftmax:
    def test_sums_to_one(self, rng):
        x = rng.normal(0, 5, (4, 7))
        assert np.allclose(softmax(x).sum(axis=-1), 1.0, atol=1e-6)

    def test_stable_for_large_inputs(self):
        x = np.array([[1e4, 1e4 + 1.0]])
        out = softmax(x)
        assert np.isfinite(out).all()
        assert out[0, 1] > out[0, 0]

    def test_log_softmax_consistent(self, rng):
        x = rng.normal(0, 3, (5, 11))
        assert np.allclose(np.exp(log_softmax(x)), softmax(x), atol=1e-6)

    def test_axis_argument(self, rng):
        x = rng.normal(0, 1, (3, 4))
        assert np.allclose(softmax(x, axis=0).sum(axis=0), 1.0, atol=1e-6)


class TestActivations:
    def test_silu_known_values(self):
        assert silu(np.array([0.0]))[0] == 0.0
        assert silu(np.array([100.0]))[0] == pytest.approx(100.0)
        assert silu(np.array([-100.0]))[0] == pytest.approx(0.0, abs=1e-6)

    def test_gelu_known_values(self):
        assert gelu(np.array([0.0]))[0] == 0.0
        assert gelu(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-3)

    def test_swiglu_composition(self, rng):
        g, u = rng.normal(0, 1, 16), rng.normal(0, 1, 16)
        assert np.allclose(swiglu(g, u), silu(g) * u)


class TestRMSNorm:
    def test_unit_rms_output(self, rng):
        x = rng.normal(0, 7, (3, 32)).astype(np.float32)
        w = np.ones(32, dtype=np.float32)
        out = rms_norm(x, w)
        rms = np.sqrt(np.mean(out**2, axis=-1))
        assert np.allclose(rms, 1.0, atol=1e-3)

    def test_weight_scales(self, rng):
        x = rng.normal(0, 1, (2, 8)).astype(np.float32)
        w = np.full(8, 2.0, dtype=np.float32)
        assert np.allclose(rms_norm(x, w), 2 * rms_norm(x, np.ones(8, np.float32)))


class TestRoPE:
    def test_rotation_preserves_norm(self, rng):
        phases = rope_frequencies(16, 64)
        x = rng.normal(0, 1, (2, 8, 16)).astype(np.float32)
        rotated = apply_rope(x, phases, np.arange(8))
        assert np.allclose(
            np.linalg.norm(rotated, axis=-1), np.linalg.norm(x, axis=-1), atol=1e-4
        )

    def test_position_zero_is_identity(self, rng):
        phases = rope_frequencies(8, 16)
        x = rng.normal(0, 1, (1, 1, 8)).astype(np.float32)
        assert np.allclose(apply_rope(x, phases, np.array([0])), x, atol=1e-6)

    def test_relative_property(self, rng):
        """<rope(q,m), rope(k,n)> depends only on m-n."""
        d = 16
        phases = rope_frequencies(d, 128)
        q = rng.normal(0, 1, d).astype(np.float32)
        k = rng.normal(0, 1, d).astype(np.float32)

        def dot(m, n):
            qm = apply_rope(q[None, None], phases, np.array([m]))[0, 0]
            kn = apply_rope(k[None, None], phases, np.array([n]))[0, 0]
            return float(qm @ kn)

        assert dot(3, 1) == pytest.approx(dot(10, 8), abs=1e-4)

    def test_odd_head_dim_rejected(self):
        with pytest.raises(ValueError):
            rope_frequencies(7, 16)


class TestTopK:
    def test_matches_argsort(self, rng):
        x = rng.normal(0, 1, (10, 20))
        idx = top_k_indices(x, 4)
        ref = np.argsort(-x, axis=-1)[:, :4]
        vals = np.take_along_axis(x, idx, axis=-1)
        ref_vals = np.take_along_axis(x, ref, axis=-1)
        assert np.allclose(vals, ref_vals)

    def test_sorted_descending(self, rng):
        x = rng.normal(0, 1, (5, 12))
        vals = np.take_along_axis(x, top_k_indices(x, 5), axis=-1)
        assert (np.diff(vals, axis=-1) <= 1e-9).all()

    def test_k_bounds(self):
        x = np.zeros((2, 3))
        with pytest.raises(ValueError):
            top_k_indices(x, 0)
        with pytest.raises(ValueError):
            top_k_indices(x, 4)

    def test_k_equals_n(self, rng):
        x = rng.normal(0, 1, (3, 4))
        idx = top_k_indices(x, 4)
        assert set(idx[0].tolist()) == {0, 1, 2, 3}


class TestCausalMask:
    def test_square_is_lower_triangular(self):
        m = causal_mask(4, 4)
        assert np.array_equal(m, np.tril(np.ones((4, 4), bool)))

    def test_decode_row_attends_everything(self):
        m = causal_mask(1, 9)
        assert m.all()

    def test_offset_alignment(self):
        m = causal_mask(2, 5)
        # first query is the 4th token: attends positions 0..3
        assert m[0].tolist() == [True, True, True, True, False]
        assert m[1].all()

    def test_kv_shorter_than_q_rejected(self):
        with pytest.raises(ValueError):
            causal_mask(5, 3)
