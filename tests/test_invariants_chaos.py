"""Property-based invariant suite: the engine under chaos (and without).

Drives :mod:`repro.faults` end to end: whatever a seeded fault schedule
does to the serving engine, the simulation must keep its invariants —
token conservation, an exactly-partitioned KV pool, monotone simulated
time, and every admitted request ending terminal (finished, retried to
completion, or failed with a reason).  Same-seed chaos runs must replay
bit-identically.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.invariants import drain_checked, run_digest
from repro.faults.harness import ChaosConfig, build_chaos_engine
from repro.faults.schedule import (
    PERMANENT,
    FaultEvent,
    FaultKind,
    FaultSchedule,
)
from repro.hardware.gpus import H100_SXM
from repro.models.zoo import get_model
from repro.perfmodel.inference import InferencePerfModel
from repro.serving.engine import ServingEngine
from repro.serving.request import Request, SamplingParams
from repro.serving.scheduler import SchedulerConfig

MODEL = "OLMoE-1B-7B"


@pytest.fixture(scope="module")
def perf():
    return InferencePerfModel(get_model(MODEL), H100_SXM)


def _healthy_engine(perf, *, num_requests, input_tokens, output_tokens,
                    kv_pool_tokens, chunked, policy):
    engine = ServingEngine(
        perf,
        scheduler_config=SchedulerConfig(
            max_num_seqs=16,
            enable_chunked_prefill=chunked,
            chunk_size=128,
            policy=policy,
        ),
        kv_pool_tokens=kv_pool_tokens,
        rng=np.random.default_rng(0),
    )
    for i in range(num_requests):
        engine.submit(Request(
            request_id=i,
            prompt_tokens=input_tokens,
            sampling=SamplingParams(max_tokens=output_tokens),
            arrival_time=i * 0.002,
        ))
    return engine


def _chaos_config(**overrides) -> ChaosConfig:
    """Small, fast chaos deployment (defaults sized for the test suite)."""
    base = dict(num_requests=12, input_tokens=128, output_tokens=24,
                kv_pool_tokens=16_384, horizon_s=4.0)
    base.update(overrides)
    return ChaosConfig(**base)


class TestHealthyProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        num_requests=st.integers(min_value=1, max_value=10),
        input_tokens=st.integers(min_value=16, max_value=384),
        output_tokens=st.integers(min_value=1, max_value=48),
        kv_pool_tokens=st.sampled_from([4096, 8192, 16_384]),
        chunked=st.booleans(),
        policy=st.sampled_from(["prefill_first", "decode_first"]),
    )
    def test_invariants_hold_without_faults(self, perf, num_requests,
                                            input_tokens, output_tokens,
                                            kv_pool_tokens, chunked, policy):
        engine = _healthy_engine(
            perf, num_requests=num_requests, input_tokens=input_tokens,
            output_tokens=output_tokens, kv_pool_tokens=kv_pool_tokens,
            chunked=chunked, policy=policy,
        )
        result = drain_checked(engine)
        assert result.availability == 1.0
        assert result.num_failed == 0


class TestChaosProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        fault_seed=st.integers(min_value=0, max_value=31),
        fault_rate=st.sampled_from([2.0, 4.0, 8.0]),
        policy=st.sampled_from(["retry", "failfast"]),
        replicas=st.sampled_from([1, 2]),
        degrade=st.booleans(),
    )
    def test_invariants_hold_under_chaos(self, fault_seed, fault_rate,
                                         policy, replicas, degrade):
        engine, injector = build_chaos_engine(_chaos_config(
            fault_seed=fault_seed, fault_rate=fault_rate,
            policy=policy, replicas=replicas, degrade=degrade,
        ))
        result = drain_checked(engine)
        counts = injector.counts
        assert counts["requests_killed"] == counts["retries"] + counts["failures"]
        finished = sum(1 for r in result.requests if r.is_finished)
        assert result.availability == finished / result.num_requests
        if policy == "failfast":
            assert result.num_fault_retries == 0

    @pytest.mark.parametrize("fault_seed", [1, 5, 11])
    def test_invariant_suite_across_fault_seeds(self, fault_seed):
        """The ISSUE's acceptance gate: the full invariant suite under at
        least three distinct fault seeds, both recovery policies."""
        for policy in ("retry", "failfast"):
            engine, injector = build_chaos_engine(_chaos_config(
                fault_seed=fault_seed, fault_rate=6.0, policy=policy,
            ))
            result = drain_checked(engine)
            for req in result.requests:
                assert req.is_terminal
                if req.is_failed:
                    assert req.failure_reason

    @pytest.mark.parametrize("fault_seed", [1, 5, 11])
    def test_same_seed_chaos_is_bit_identical(self, fault_seed):
        def digest():
            engine, _ = build_chaos_engine(_chaos_config(
                fault_seed=fault_seed, fault_rate=6.0,
            ))
            return run_digest(engine.run())

        assert digest() == digest()

    def test_different_seeds_diverge(self):
        def digest(seed):
            engine, _ = build_chaos_engine(_chaos_config(
                fault_seed=seed, fault_rate=8.0,
            ))
            return run_digest(engine.run())

        assert digest(3) != digest(4)


class TestDirectedFaultScenarios:
    """Hand-built schedules driving the paths Poisson chaos hits rarely."""

    def test_shard_loss_without_replicas_degrades_topk(self):
        schedule = FaultSchedule(events=(FaultEvent(
            time=0.01, kind=FaultKind.EXPERT_SHARD_LOSS, target=1,
        ),))
        engine, injector = build_chaos_engine(
            _chaos_config(replicas=1, degrade=True), schedule=schedule)
        drain_checked(engine)
        top_k = get_model(MODEL).moe.top_k
        assert injector.health.effective_top_k < top_k
        assert injector.counts["degrades"] >= 1
        assert injector.health.unrecoverable == []

    def test_shard_loss_without_degrade_is_unrecoverable(self):
        schedule = FaultSchedule(events=(FaultEvent(
            time=0.01, kind=FaultKind.EXPERT_SHARD_LOSS, target=1,
        ),))
        engine, injector = build_chaos_engine(
            _chaos_config(replicas=1, degrade=False), schedule=schedule)
        drain_checked(engine)
        assert injector.health.unrecoverable

    def test_shard_loss_with_replicas_keeps_full_topk(self):
        schedule = FaultSchedule(events=(FaultEvent(
            time=0.01, kind=FaultKind.EXPERT_SHARD_LOSS, target=1,
        ),))
        engine, injector = build_chaos_engine(
            _chaos_config(replicas=2), schedule=schedule)
        drain_checked(engine)
        assert injector.health.effective_top_k == get_model(MODEL).moe.top_k
        assert injector.health.unrecoverable == []

    def test_losing_the_only_device_fails_everything_in_flight(self):
        schedule = FaultSchedule(events=(FaultEvent(
            time=0.02, kind=FaultKind.DEVICE_LOSS, target=0,
        ),))
        engine, injector = build_chaos_engine(
            _chaos_config(num_devices=1, ep=1, arrival_interval=0.0),
            schedule=schedule)
        result = drain_checked(engine)
        assert "all devices lost" in injector.health.unrecoverable
        assert result.num_failed > 0
        assert all(r.failure_reason for r in result.requests if r.is_failed)

    def test_permanent_kv_pressure_fails_unschedulable_requests(self):
        """A permanent reservation that leaves the pool too small must fail
        the doomed requests with a reason, not livelock the engine."""
        schedule = FaultSchedule(events=(FaultEvent(
            time=0.001, kind=FaultKind.KV_PRESSURE, magnitude=0.95,
        ),))
        engine, _ = build_chaos_engine(
            _chaos_config(kv_pool_tokens=2048, num_requests=6),
            schedule=schedule)
        result = drain_checked(engine)
        failed = [r for r in result.requests if r.is_failed]
        assert failed
        assert any("insufficient KV capacity" in r.failure_reason
                   for r in failed)

    def test_transient_kv_pressure_heals_and_run_completes(self):
        schedule = FaultSchedule(events=(FaultEvent(
            time=0.001, kind=FaultKind.KV_PRESSURE, magnitude=0.9,
            duration_s=0.2,
        ),))
        engine, injector = build_chaos_engine(
            _chaos_config(kv_pool_tokens=2048, num_requests=6,
                          arrival_interval=0.0),
            schedule=schedule)
        result = drain_checked(engine)
        assert injector.counts["recoveries"] == 1
        assert result.availability == 1.0
        assert engine.kv.reserved_blocks == 0

    def test_retry_budget_exhaustion_fails_with_reason(self):
        """Repeated kills of the same device's requests must exhaust the
        retry budget and fail with the originating fault in the reason."""
        events = tuple(FaultEvent(
            time=0.01 + 0.4 * i, kind=FaultKind.DEVICE_LOSS, target=0,
            duration_s=0.35,
        ) for i in range(8))
        engine, _ = build_chaos_engine(
            _chaos_config(num_requests=8, output_tokens=256,
                          arrival_interval=0.0, fault_rate=0.0),
            schedule=FaultSchedule(events=events))
        result = drain_checked(engine)
        exhausted = [r for r in result.requests
                     if r.is_failed and "retry budget exhausted"
                     in r.failure_reason]
        assert exhausted
        assert all(r.fault_retries == 3 for r in exhausted)
