"""Tests for repro.perfmodel.offload (CPU expert offloading)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.gpus import H100_SXM
from repro.models.zoo import MIXTRAL_8X7B, QWEN3_0_6B
from repro.perfmodel.offload import (
    OffloadPlan,
    offload_throughput_estimate,
    offloaded_expert_step_time,
    traffic_hit_fraction,
)


class TestTrafficHitFraction:
    def test_uniform_counts(self):
        assert traffic_hit_fraction(np.ones(8), 0.5) == pytest.approx(0.5)

    def test_skewed_counts_beat_fraction(self):
        counts = np.array([100, 100, 1, 1, 1, 1, 1, 1], dtype=float)
        assert traffic_hit_fraction(counts, 0.25) == pytest.approx(200 / 206)

    def test_extremes(self):
        counts = np.arange(8, dtype=float)
        assert traffic_hit_fraction(counts, 0.0) == 0.0
        assert traffic_hit_fraction(counts, 1.0) == pytest.approx(1.0)

    def test_zero_counts_fall_back_to_fraction(self):
        assert traffic_hit_fraction(np.zeros(4), 0.5) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            traffic_hit_fraction(np.ones(4), 1.5)
        with pytest.raises(ValueError):
            traffic_hit_fraction(np.ones((2, 2)), 0.5)


class TestOffloadPlan:
    def test_validation(self):
        OffloadPlan(hot_fraction=0.5, hit_fraction=0.9)
        with pytest.raises(ValueError, match="worse-than-random"):
            OffloadPlan(hot_fraction=0.5, hit_fraction=0.3)
        with pytest.raises(ValueError):
            OffloadPlan(hot_fraction=0.5, hit_fraction=0.9, pcie_gbps=0)


class TestStepTime:
    def test_fully_resident_matches_hbm_only(self):
        full = OffloadPlan(hot_fraction=1.0, hit_fraction=1.0)
        t = offloaded_expert_step_time(MIXTRAL_8X7B, 16, full, H100_SXM)
        assert t > 0

    def test_cold_misses_dominate(self):
        """PCIe is ~50x slower than HBM3 — a 50% miss rate is catastrophic."""
        full = OffloadPlan(hot_fraction=1.0, hit_fraction=1.0)
        half = OffloadPlan(hot_fraction=0.5, hit_fraction=0.5)
        t_full = offloaded_expert_step_time(MIXTRAL_8X7B, 16, full, H100_SXM)
        t_half = offloaded_expert_step_time(MIXTRAL_8X7B, 16, half, H100_SXM)
        assert t_half > 10 * t_full

    def test_frequency_caching_softens_the_cliff(self):
        random_cache = OffloadPlan(hot_fraction=0.5, hit_fraction=0.5)
        freq_cache = OffloadPlan(hot_fraction=0.5, hit_fraction=0.95)
        t_rand = offloaded_expert_step_time(MIXTRAL_8X7B, 16, random_cache, H100_SXM)
        t_freq = offloaded_expert_step_time(MIXTRAL_8X7B, 16, freq_cache, H100_SXM)
        assert t_freq < t_rand / 3

    def test_dense_model_rejected(self):
        with pytest.raises(ValueError, match="MoE"):
            offloaded_expert_step_time(
                QWEN3_0_6B, 4, OffloadPlan(1.0, 1.0), H100_SXM
            )


class TestThroughputEstimate:
    def test_throughput_monotone_in_hit_rate(self):
        rates = []
        for hit in (0.5, 0.8, 0.95, 1.0):
            plan = OffloadPlan(hot_fraction=0.5, hit_fraction=hit)
            rates.append(offload_throughput_estimate(
                MIXTRAL_8X7B, 16, 1024, plan, H100_SXM
            ))
        assert all(a < b for a, b in zip(rates, rates[1:]))

    def test_full_residency_close_to_base_model(self):
        from repro.perfmodel.phases import StepModel

        plan = OffloadPlan(hot_fraction=1.0, hit_fraction=1.0)
        off = offload_throughput_estimate(MIXTRAL_8X7B, 16, 1024, plan, H100_SXM)
        base = 16 / StepModel(MIXTRAL_8X7B, H100_SXM).decode_step_time(16, 1024)
        assert off == pytest.approx(base, rel=0.35)
