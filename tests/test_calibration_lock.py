"""Calibration locks: guard the headline reproduced numbers.

EXPERIMENTS.md quotes specific measured values; these tests pin them with
generous tolerances (±20-30%) so an accidental recalibration of the
hardware constants that silently changes a reproduced *shape* fails
loudly.  If you recalibrate deliberately, update EXPERIMENTS.md and these
locks together.
"""

from __future__ import annotations

import pytest

from repro.hardware.gpus import H100_SXM
from repro.models.zoo import get_model
from repro.optim.quantization import FP8_CONFIG, FP16_CONFIG
from repro.parallel.plan import ParallelPlan
from repro.perfmodel.inference import InferencePerfModel


def _thr(model, plan=None, quant=FP16_CONFIG, bs=32, io=1024, fused=True):
    pm = InferencePerfModel(get_model(model), H100_SXM,
                            plan=plan or ParallelPlan(), quant=quant,
                            fused_moe=fused)
    return pm.generate(bs, io, io, check_memory=False).throughput_tok_s


class TestAbsoluteLocks:
    """Coarse absolute values (±25%): the model's overall scale."""

    def test_mixtral_tp4_fp16(self):
        assert _thr("Mixtral-8x7B", ParallelPlan(tp=4)) == pytest.approx(
            4700, rel=0.25
        )

    def test_olmoe_single_gpu(self):
        assert _thr("OLMoE-1B-7B") == pytest.approx(7200, rel=0.25)

    def test_olmoe_bs1_decode_rate(self):
        pm = InferencePerfModel(get_model("OLMoE-1B-7B"), H100_SXM)
        rate = 1.0 / pm.steps.decode_step_time(1, 512)
        assert rate == pytest.approx(390, rel=0.3)


class TestRatioLocks:
    """The reproduced paper ratios (±8 percentage points)."""

    def test_fp8_gain_large_batch(self):
        f16 = _thr("Mixtral-8x7B", ParallelPlan(tp=4), FP16_CONFIG, bs=64)
        f8 = _thr("Mixtral-8x7B", ParallelPlan(tp=4), FP8_CONFIG, bs=64)
        gain = 100 * (f8 / f16 - 1)
        assert 15 <= gain <= 35  # paper: 25-30%

    def test_fused_moe_gain(self):
        fused = _thr("Mixtral-8x7B", ParallelPlan(tp=4), bs=16)
        naive = _thr("Mixtral-8x7B", ParallelPlan(tp=4), bs=16, fused=False)
        gain = 100 * (fused / naive - 1)
        assert 8 <= gain <= 30  # paper: 15-20%

    def test_tp_scaling(self):
        t1 = _thr("Mixtral-8x7B", ParallelPlan(tp=1), bs=16)
        t4 = _thr("Mixtral-8x7B", ParallelPlan(tp=4), bs=16)
        assert 2.0 <= t4 / t1 <= 4.0  # paper: >2x

    def test_pp_flat(self):
        t1 = _thr("Mixtral-8x7B", ParallelPlan(pp=1), bs=16)
        t4 = _thr("Mixtral-8x7B", ParallelPlan(pp=4), bs=16)
        assert 0.85 <= t4 / t1 <= 1.1  # paper: almost flat

    def test_qwen_beats_deepseek(self):
        q = _thr("Qwen1.5-MoE-A2.7B", bs=32, io=512)
        d = _thr("DeepSeek-V2-Lite", bs=32, io=512)
        assert 1.05 <= q / d <= 1.5  # paper: 20-30%

    def test_ttft_ordering_llms(self):
        ttfts = {}
        for name, tp in (("OLMoE-1B-7B", 1), ("DeepSeek-V2-Lite", 1),
                         ("Mixtral-8x7B", 2)):
            pm = InferencePerfModel(get_model(name), H100_SXM,
                                    plan=ParallelPlan(tp=tp))
            ttfts[name] = pm.ttft(64, 2048)
        assert ttfts["OLMoE-1B-7B"] < ttfts["DeepSeek-V2-Lite"]
        assert ttfts["OLMoE-1B-7B"] < ttfts["Mixtral-8x7B"]
