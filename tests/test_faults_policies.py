"""Unit tests for repro.faults.policies — recovery and degradation."""

from __future__ import annotations

import pytest

from repro.faults.policies import (
    DegradePolicy,
    FailFastPolicy,
    RecoveryDecision,
    RetryPolicy,
)
from repro.serving.request import Request, SamplingParams


def _request(fault_retries: int = 0) -> Request:
    req = Request(request_id=0, prompt_tokens=16,
                  sampling=SamplingParams(max_tokens=4))
    req.fault_retries = fault_retries
    return req


class TestRecoveryDecision:
    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryDecision(action="shrug")
        with pytest.raises(ValueError):
            RecoveryDecision(action="fail")  # a fail needs a reason
        RecoveryDecision(action="retry", retry_at=1.0)
        RecoveryDecision(action="fail", reason="device lost")


class TestRetryPolicy:
    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0, max_delay_s=0.3)
        assert policy.backoff_s(0) == pytest.approx(0.1)
        assert policy.backoff_s(1) == pytest.approx(0.2)
        assert policy.backoff_s(2) == pytest.approx(0.3)  # capped
        assert policy.backoff_s(10) == pytest.approx(0.3)

    def test_retry_until_budget_exhausted(self):
        policy = RetryPolicy(max_retries=2, base_delay_s=0.05)
        d0 = policy.on_request_killed(_request(0), 1.0, "device 0 lost")
        assert d0.action == "retry"
        assert d0.retry_at == pytest.approx(1.05)
        d1 = policy.on_request_killed(_request(1), 2.0, "device 0 lost")
        assert d1.action == "retry"
        assert d1.retry_at == pytest.approx(2.1)
        d2 = policy.on_request_killed(_request(2), 3.0, "device 0 lost")
        assert d2.action == "fail"
        assert "retry budget exhausted after 2 attempts" in d2.reason
        assert "device 0 lost" in d2.reason

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)


class TestFailFastPolicy:
    def test_always_fails_with_the_fault_reason(self):
        decision = FailFastPolicy().on_request_killed(
            _request(), 1.0, "EP rank 2 lost")
        assert decision.action == "fail"
        assert decision.reason == "EP rank 2 lost"


class TestDegradePolicy:
    def test_steps_down_to_floor(self):
        policy = DegradePolicy(min_top_k=2, step=3)
        assert policy.degraded_top_k(8) == 5
        assert policy.degraded_top_k(5) == 2
        assert policy.degraded_top_k(2) == 2  # never below the floor
        assert policy.degraded_top_k(1) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            DegradePolicy(min_top_k=0)
        with pytest.raises(ValueError):
            DegradePolicy(step=0)
