"""Tests for the deployment advisor."""

from __future__ import annotations

import pytest

from repro.core.advisor import DeploymentTarget, advise
from repro.hardware.gpus import H100_SXM
from repro.models.zoo import MIXTRAL_8X7B, OLMOE_1B_7B
from repro.optim.quantization import FP8_CONFIG, FP16_CONFIG


class TestTarget:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeploymentTarget(batch_size=0, input_tokens=1, output_tokens=1)
        with pytest.raises(ValueError):
            DeploymentTarget(batch_size=1, input_tokens=1, output_tokens=1,
                             ttft_slo_s=0.0)


class TestAdvise:
    def test_small_model_prefers_few_devices(self):
        """With no SLO pressure, per-device efficiency favours 1 GPU."""
        rec = advise(OLMOE_1B_7B, H100_SXM,
                     DeploymentTarget(batch_size=16, input_tokens=512,
                                      output_tokens=256))
        assert rec.best is not None
        assert rec.best.plan.num_devices == 1

    def test_memory_eliminates_single_device_for_mixtral_fp16(self):
        rec = advise(MIXTRAL_8X7B, H100_SXM,
                     DeploymentTarget(batch_size=8, input_tokens=512,
                                      output_tokens=256),
                     quants=(FP16_CONFIG,))
        assert rec.best is not None
        assert rec.best.plan.num_devices >= 2
        assert any("memory" in r for r in rec.rationale)

    def test_fp8_lets_mixtral_fit_one_gpu(self):
        rec = advise(MIXTRAL_8X7B, H100_SXM,
                     DeploymentTarget(batch_size=4, input_tokens=256,
                                      output_tokens=128),
                     quants=(FP8_CONFIG,))
        assert rec.best is not None
        one_gpu = [c for c in rec.candidates
                   if c.plan.num_devices == 1 and c.fits]
        assert one_gpu  # 47B at 1 byte/param ≈ 47 GB < 80 GB

    def test_tight_ttft_slo_forces_more_devices(self):
        loose = advise(MIXTRAL_8X7B, H100_SXM,
                       DeploymentTarget(batch_size=32, input_tokens=2048,
                                        output_tokens=256))
        tight = advise(MIXTRAL_8X7B, H100_SXM,
                       DeploymentTarget(batch_size=32, input_tokens=2048,
                                        output_tokens=256, ttft_slo_s=0.4))
        assert loose.best is not None and tight.best is not None
        assert tight.best.plan.num_devices >= loose.best.plan.num_devices
        assert tight.best.ttft_s <= 0.4

    def test_impossible_slo_returns_none_with_rationale(self):
        rec = advise(MIXTRAL_8X7B, H100_SXM,
                     DeploymentTarget(batch_size=64, input_tokens=2048,
                                      output_tokens=2048, ttft_slo_s=1e-6))
        assert rec.best is None
        assert "no feasible deployment" in rec.describe()
        assert any("TTFT" in r for r in rec.rationale)

    def test_best_is_feasible_and_dominant(self):
        rec = advise(OLMOE_1B_7B, H100_SXM,
                     DeploymentTarget(batch_size=32, input_tokens=1024,
                                      output_tokens=512))
        assert rec.best.feasible
        for c in rec.candidates:
            if c.feasible:
                assert rec.best.throughput_per_device >= c.throughput_per_device

    def test_describe_mentions_recommendation(self):
        rec = advise(OLMOE_1B_7B, H100_SXM,
                     DeploymentTarget(batch_size=8, input_tokens=256,
                                      output_tokens=64))
        text = rec.describe()
        assert "recommend" in text and "tok/s" in text
