"""simlint engine: suppressions, rule selection, baseline, reporters."""

import json
import pathlib
import textwrap

import pytest

from repro.lint.baseline import BASELINE_NAME, Baseline
from repro.lint.core import (
    LintProject,
    SourceFile,
    Violation,
    all_rules,
    get_rule,
    lint_source,
    select_rules,
)
from repro.lint.reporters import (
    JSON_SCHEMA_VERSION,
    render_json,
    render_rule_catalog,
    render_text,
)


def _src(text: str) -> str:
    return textwrap.dedent(text).lstrip("\n")


WALL = _src("""
    import time

    def f():
        return time.time()
""")


class TestSuppressions:
    def test_line_suppression_silences_the_rule(self):
        rule = get_rule("DET001")
        assert lint_source(WALL, rule)  # fires unsuppressed
        suppressed = WALL.replace(
            "return time.time()",
            "return time.time()  # simlint: disable=DET001")
        assert lint_source(suppressed, rule) == []

    def test_line_suppression_is_rule_specific(self):
        suppressed = WALL.replace(
            "return time.time()",
            "return time.time()  # simlint: disable=DET002")
        assert lint_source(suppressed, get_rule("DET001"))

    def test_file_suppression(self):
        text = "# simlint: disable-file=DET001\n" + WALL
        assert lint_source(text, get_rule("DET001")) == []

    def test_multiple_rules_one_directive(self):
        sf = SourceFile(pathlib.Path("x.py"), "x.py",
                        "x = 1  # simlint: disable=DET001, UNIT001\n")
        assert sf.suppressed("DET001", 1)
        assert sf.suppressed("UNIT001", 1)
        assert not sf.suppressed("DET002", 1)

    def test_unit_declaration_parsed(self):
        sf = SourceFile(pathlib.Path("x.py"), "x.py",
                        "comm: float = 0.0  # simlint: unit=s\n")
        assert sf.unit_decls == {1: "s"}


class TestRuleRegistry:
    def test_all_families_registered(self):
        ids = {r.id for r in all_rules()}
        for family in ("DET001", "DET002", "DET003", "UNIT001", "UNIT002",
                       "UNIT003", "PAR001", "PAR002", "REG001", "REG002",
                       "REG003", "REG004", "DET101", "DET102", "DET103",
                       "UNIT101", "UNIT102", "UNIT103", "PAR101", "PAR102",
                       "SUP001"):
            assert family in ids

    def test_select_by_prefix(self):
        ids = {r.id for r in select_rules("DET")}
        assert ids == {"DET001", "DET002", "DET003",
                       "DET101", "DET102", "DET103"}

    def test_select_local_det_only(self):
        ids = {r.id for r in select_rules("DET001,DET002,DET003")}
        assert ids == {"DET001", "DET002", "DET003"}

    def test_select_mixed_spec(self):
        ids = {r.id for r in select_rules("UNIT001,PAR")}
        assert ids == {"UNIT001", "PAR001", "PAR002", "PAR101", "PAR102"}

    def test_select_none_selects_all(self):
        assert select_rules(None) == all_rules()

    def test_unknown_selector_raises(self):
        with pytest.raises(KeyError):
            select_rules("NOPE")

    def test_rules_scoped_outside_include_do_not_fire(self):
        # DET rules only run on src/repro; a tests/ file is out of scope
        assert lint_source(WALL, get_rule("DET001"), rel="tests/x.py") == []


class TestViolationKey:
    def test_key_stable_across_line_moves(self):
        a = Violation("DET001", "error", "a.py", 3, 0, "m", snippet="x = t()")
        b = Violation("DET001", "error", "a.py", 99, 4, "m", snippet="x = t()")
        assert a.key() == b.key()

    def test_key_changes_with_snippet(self):
        a = Violation("DET001", "error", "a.py", 3, 0, "m", snippet="x = t()")
        b = Violation("DET001", "error", "a.py", 3, 0, "m", snippet="y = t()")
        assert a.key() != b.key()


class TestBaseline:
    def _violations(self):
        return [
            Violation("DET001", "error", "a.py", 1, 0, "m1", snippet="s1"),
            Violation("UNIT001", "error", "b.py", 2, 0, "m2", snippet="s2"),
        ]

    def test_write_then_diff_roundtrip(self, tmp_path):
        vs = self._violations()
        base = Baseline(tmp_path / BASELINE_NAME)
        base.write(vs)
        new, stale = Baseline(tmp_path / BASELINE_NAME).diff(vs)
        assert new == [] and stale == []

    def test_new_violation_detected(self, tmp_path):
        vs = self._violations()
        base = Baseline(tmp_path / BASELINE_NAME)
        base.write(vs[:1])
        new, stale = base.diff(vs)
        assert [v.rule for v in new] == ["UNIT001"]
        assert stale == []

    def test_stale_entry_detected(self, tmp_path):
        vs = self._violations()
        base = Baseline(tmp_path / BASELINE_NAME)
        base.write(vs)
        new, stale = base.diff(vs[:1])
        assert new == []
        assert [e["rule"] for e in stale] == ["UNIT001"]

    def test_missing_baseline_means_everything_new(self, tmp_path):
        base = Baseline(tmp_path / BASELINE_NAME)
        new, stale = base.diff(self._violations())
        assert len(new) == 2 and stale == []


class TestReporters:
    def test_text_clean(self):
        assert "clean" in render_text([])

    def test_text_tags_new_vs_baselined(self):
        vs = [Violation("DET001", "error", "a.py", 1, 0, "m", snippet="s1"),
              Violation("DET002", "error", "a.py", 2, 0, "m", snippet="s2")]
        out = render_text(vs, new_keys={vs[0].key()})
        assert "[NEW]" in out and "[baselined]" in out

    def test_json_schema(self):
        vs = [Violation("DET001", "error", "a.py", 3, 4, "msg", snippet="s")]
        doc = json.loads(render_json(vs, new_keys=set()))
        assert doc["version"] == JSON_SCHEMA_VERSION
        assert doc["summary"]["total"] == 1
        assert doc["summary"]["by_rule"] == {"DET001": 1}
        assert doc["summary"]["by_severity"] == {"error": 1}
        (v,) = doc["violations"]
        assert set(v) == {"rule", "severity", "path", "line", "end_line",
                          "col", "message", "key", "new"}
        assert v["new"] is False

    def test_json_without_baseline_omits_new_flag(self):
        vs = [Violation("DET001", "error", "a.py", 3, 4, "msg", snippet="s")]
        (v,) = json.loads(render_json(vs))["violations"]
        assert "new" not in v

    def test_rule_catalog_lists_every_rule(self):
        out = render_rule_catalog()
        for rule in all_rules():
            assert rule.id in out


class TestProjectParsing:
    def test_unparseable_file_reports_lint000(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text("def broken(:\n")
        project = LintProject(tmp_path)
        assert [v.rule for v in project.errors] == ["LINT000"]
