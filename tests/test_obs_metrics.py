"""Tests for repro.obs.metrics (registry, histograms, exposition)."""

from __future__ import annotations

import json
import math
import re

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc(self):
        c = Counter("reqs")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_inc_rejected(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("reqs").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("util")
        g.set(0.5)
        g.inc(0.25)
        g.dec(0.5)
        assert g.value == pytest.approx(0.25)


class TestHistogram:
    def test_observe_counts_and_sum(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(105.0)
        assert h.mean == pytest.approx(26.25)

    def test_bucket_counts_are_cumulative_with_inf(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        for v in (0.5, 0.6, 1.5, 9.0):
            h.observe(v)
        assert h.bucket_counts() == [(1.0, 2), (2.0, 3), (math.inf, 4)]

    def test_boundary_value_lands_in_its_bucket(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        h.observe(1.0)  # le="1.0" includes the bound itself
        assert h.bucket_counts()[0] == (1.0, 1)

    def test_quantile_interpolates(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            h.observe(1.5)
        q = h.quantile(0.5)
        assert 1.0 <= q <= 2.0

    def test_quantile_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            Histogram("lat").quantile(0.5)

    def test_quantile_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram("lat").quantile(1.5)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(2.0, 1.0))

    def test_default_buckets_ascending(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a", labels={"x": "1"}) is not reg.counter("a")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a")

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            MetricsRegistry().counter("bad name!")

    def test_len_and_iter(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.gauge("b")
        assert len(reg) == 2
        assert {m.name for m in reg} == {"a", "b"}


class TestExposition:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", "served requests").inc(3)
        reg.gauge("kv_utilization").set(0.75)
        h = reg.histogram("ttft_seconds", "time to first token",
                          buckets=(0.01, 0.1))
        h.observe(0.005)
        h.observe(0.5)
        return reg

    def test_prometheus_format(self):
        text = self._registry().to_prometheus()
        assert "# HELP requests_total served requests" in text
        assert "# TYPE requests_total counter" in text
        assert re.search(r"^requests_total 3\.0$", text, re.M)
        assert re.search(r"^kv_utilization 0\.75$", text, re.M)
        assert 'ttft_seconds_bucket{le="+Inf"} 2' in text
        assert re.search(r"^ttft_seconds_count 2$", text, re.M)
        assert text.endswith("\n")

    def test_prometheus_labels_rendered_sorted(self):
        reg = MetricsRegistry()
        reg.counter("iters", labels={"phase": "prefill"}).inc()
        reg.counter("iters", labels={"phase": "decode"}).inc(2)
        text = reg.to_prometheus()
        assert 'iters{phase="prefill"} 1.0' in text
        assert 'iters{phase="decode"} 2.0' in text
        # one TYPE line per family, not per label set
        assert text.count("# TYPE iters counter") == 1

    def test_snapshot_is_json_serialisable(self):
        snap = self._registry().snapshot()
        parsed = json.loads(json.dumps(snap))
        names = {m["name"] for m in parsed["metrics"]}
        assert names == {"requests_total", "kv_utilization", "ttft_seconds"}
        hist = next(m for m in parsed["metrics"] if m["kind"] == "histogram")
        assert hist["count"] == 2
        assert hist["buckets"][-1]["le"] == "+Inf"
