"""Tests for repro.core.results (ResultTable)."""

from __future__ import annotations

import pytest

from repro.core.results import ResultTable


@pytest.fixture
def table():
    t = ResultTable("demo", ("model", "batch", "throughput"))
    t.add(model="a", batch=1, throughput=100.5)
    t.add(model="a", batch=2, throughput=None)
    t.add(model="b", batch=1, throughput=220.0)
    return t


class TestTable:
    def test_add_and_len(self, table):
        assert len(table) == 3

    def test_unknown_column_rejected(self, table):
        with pytest.raises(KeyError, match="unknown columns"):
            table.add(model="c", gpus=4)

    def test_missing_values_are_none(self):
        t = ResultTable("x", ("a", "b"))
        t.add(a=1)
        assert t.rows[0]["b"] is None

    def test_column(self, table):
        assert table.column("model") == ["a", "a", "b"]
        with pytest.raises(KeyError):
            table.column("gpu")

    def test_where(self, table):
        sub = table.where(model="a")
        assert len(sub) == 2
        assert all(r["model"] == "a" for r in sub)
        assert len(table.where(model="a", batch=1)) == 1

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            ResultTable("x", ("a", "a"))

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            ResultTable("x", ())


class TestRendering:
    def test_markdown_structure(self, table):
        md = table.to_markdown()
        lines = md.splitlines()
        assert lines[0] == "| model | batch | throughput |"
        assert len(lines) == 2 + 3

    def test_none_renders_as_oom(self, table):
        assert "OOM" in table.to_markdown()

    def test_float_formatting(self):
        t = ResultTable("x", ("v",))
        t.add(v=123456.7)
        t.add(v=0.00012)
        md = t.to_markdown()
        assert "123,457" in md
        assert "0.00012" in md

    def test_bool_formatting(self):
        t = ResultTable("x", ("ok",))
        t.add(ok=True)
        t.add(ok=False)
        md = t.to_markdown()
        assert "yes" in md and "no" in md

    def test_csv_roundtrip(self, table):
        import csv
        import io

        rows = list(csv.reader(io.StringIO(table.to_csv())))
        assert rows[0] == ["model", "batch", "throughput"]
        assert rows[2] == ["a", "2", ""]  # None -> empty cell
        assert len(rows) == 4


class TestPivot:
    def test_basic_pivot(self, table):
        out = table.pivot("model", "batch", "throughput")
        assert out == {"a": {1: 100.5, 2: None}, "b": {1: 220.0}}

    def test_duplicate_cells_rejected(self, table):
        table.add(model="a", batch=1, throughput=1.0)
        with pytest.raises(ValueError, match="duplicate"):
            table.pivot("model", "batch", "throughput")

    def test_unknown_column(self, table):
        with pytest.raises(KeyError):
            table.pivot("model", "gpu", "throughput")
