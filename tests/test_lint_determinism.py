"""DET0xx rules: wall clocks, unseeded RNG, set-order iteration."""

import textwrap

from repro.lint.core import get_rule, lint_source
from repro.lint.determinism import WALL_CHANNEL


def _src(text: str) -> str:
    return textwrap.dedent(text).lstrip("\n")


def _lint(rule_id: str, text: str, rel: str = "src/repro/fixture.py"):
    return lint_source(_src(text), get_rule(rule_id), rel=rel)


class TestWallClock:
    def test_flags_time_and_datetime_calls(self):
        vs = _lint("DET001", """
            import time
            import datetime

            def f():
                a = time.time()
                b = time.perf_counter()
                c = datetime.datetime.now()
                return a + b + c.timestamp()
        """)
        assert len(vs) == 3
        assert {v.line for v in vs} == {5, 6, 7}

    def test_import_alias_resolved(self):
        vs = _lint("DET001", """
            from time import perf_counter as clock

            def f():
                return clock()
        """)
        assert len(vs) == 1

    def test_simulated_clock_not_flagged(self):
        assert _lint("DET001", """
            def f(clock):
                return clock.now()
        """) == []

    def test_wall_channel_excluded(self):
        text = """
            import time

            def f():
                return time.perf_counter()
        """
        for rel in WALL_CHANNEL:
            assert _lint("DET001", text, rel=rel) == []
        assert _lint("DET001", text, rel="src/repro/serving/engine.py")


class TestUnseededRng:
    def test_flags_unseeded_and_legacy(self):
        vs = _lint("DET002", """
            import numpy as np
            import random

            a = np.random.default_rng()
            b = np.random.rand(3)
            c = random.random()
            d = random.Random()
        """)
        assert len(vs) == 4

    def test_seeded_rng_clean(self):
        assert _lint("DET002", """
            import numpy as np
            import random

            a = np.random.default_rng(123)
            b = np.random.default_rng(seed=0)
            c = random.Random(7)
        """) == []

    def test_instance_methods_not_flagged(self):
        # rng.random() is a method on a seeded generator, not the global
        assert _lint("DET002", """
            import numpy as np

            rng = np.random.default_rng(0)
            x = rng.random()
            y = rng.exponential(2.0)
        """) == []


class TestSetIteration:
    def test_flags_for_over_set_display(self):
        vs = _lint("DET003", """
            def f(rows):
                combos = {(r.a, r.b) for r in rows}
                for c in combos:
                    print(c)
        """)
        assert len(vs) == 1

    def test_flags_materializers_and_comprehensions(self):
        vs = _lint("DET003", """
            def f(xs):
                s = set(xs)
                out = [x for x in s]
                return list(s), tuple(s), out
        """)
        assert len(vs) == 3

    def test_sorted_set_is_clean(self):
        assert _lint("DET003", """
            def f(rows):
                combos = {(r.a, r.b) for r in rows}
                for c in sorted(combos):
                    print(c)
                return sorted(set(rows))
        """) == []

    def test_list_iteration_clean(self):
        assert _lint("DET003", """
            def f(xs):
                items = [x for x in xs]
                for x in items:
                    print(x)
        """) == []

    def test_annotated_set_name_tracked(self):
        vs = _lint("DET003", """
            def f():
                pending: set[int] = set()
                for p in pending:
                    print(p)
        """)
        assert len(vs) >= 1
