"""Tests for tensor/pipeline/expert parallel analysis modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.gpus import H100_SXM
from repro.models.zoo import DEEPSEEK_V2_LITE, MIXTRAL_8X7B
from repro.parallel.expert_parallel import (
    ep_dispatch_time,
    ep_dispatch_volume,
    round_robin_placement,
    simulate_ep_imbalance,
)
from repro.parallel.pipeline import (
    partition_layers,
    pipeline_bubble_fraction,
    pipeline_efficiency,
)
from repro.parallel.tensor_parallel import (
    tp_comm_time_per_layer,
    tp_comm_volume_per_step,
    tp_shard,
)


class TestTensorParallel:
    def test_shard_divides_weights(self):
        s1 = tp_shard(MIXTRAL_8X7B, 1)
        s4 = tp_shard(MIXTRAL_8X7B, 4)
        assert s4.weight_bytes_per_device == pytest.approx(
            s1.weight_bytes_per_device / 4
        )
        assert s4.heads_per_device == 8
        assert s4.kv_heads_per_device == 2

    def test_kv_heads_floor_at_one(self):
        s = tp_shard(MIXTRAL_8X7B, 16)
        assert s.kv_heads_per_device == 1

    def test_indivisible_heads(self):
        with pytest.raises(ValueError):
            tp_shard(MIXTRAL_8X7B, 3)

    def test_comm_volume(self):
        vol = tp_comm_volume_per_step(MIXTRAL_8X7B, 16)
        assert vol == 2 * 32 * 16 * 4096 * 2

    def test_comm_time_positive(self):
        assert tp_comm_time_per_layer(MIXTRAL_8X7B, 16, 4, H100_SXM) > 0


class TestPipeline:
    def test_partition_covers_all_layers(self):
        part = partition_layers(MIXTRAL_8X7B, 4)
        assert part.num_stages == 4
        assert part.boundaries[0] == 0
        assert part.boundaries[-1] == MIXTRAL_8X7B.num_layers

    def test_partition_balanced_for_uniform_model(self):
        part = partition_layers(MIXTRAL_8X7B, 4)
        assert part.imbalance < 1.05

    def test_partition_respects_heterogeneous_layers(self):
        """DeepSeek's dense layer 0 is lighter than the MoE layers."""
        part = partition_layers(DEEPSEEK_V2_LITE, 3)
        assert part.imbalance < 1.25

    def test_stage_of_layer(self):
        part = partition_layers(MIXTRAL_8X7B, 2)
        assert part.stage_of_layer(0) == 0
        assert part.stage_of_layer(31) == 1

    def test_partition_bounds(self):
        with pytest.raises(ValueError):
            partition_layers(MIXTRAL_8X7B, 0)
        with pytest.raises(ValueError):
            partition_layers(MIXTRAL_8X7B, 33)

    def test_bubble_fraction(self):
        assert pipeline_bubble_fraction(1, 8) == 0.0
        assert pipeline_bubble_fraction(4, 1) == pytest.approx(3 / 4)
        assert pipeline_bubble_fraction(4, 16) == pytest.approx(3 / 19)

    def test_efficiency(self):
        assert pipeline_efficiency(4, 100) > 0.9
        assert pipeline_efficiency(4, 1) == pytest.approx(0.25)
        with pytest.raises(ValueError):
            pipeline_efficiency(4, 4, stage_imbalance=0.9)


class TestExpertParallel:
    def test_round_robin_blocks(self):
        p = round_robin_placement(8, 4)
        assert p.experts_on_device(0) == [0, 1]
        assert p.experts_on_device(3) == [6, 7]
        assert p.experts_per_device().tolist() == [2, 2, 2, 2]

    def test_indivisible_placement(self):
        with pytest.raises(ValueError):
            round_robin_placement(8, 3)

    def test_dispatch_volume(self):
        v = ep_dispatch_volume(16, 4096, 2, 4)
        assert v == 16 * 2 * 4096 * 2

    def test_dispatch_time_grows_with_ep(self):
        t2 = ep_dispatch_time(64, 4096, 2, 2, H100_SXM)
        t4 = ep_dispatch_time(64, 4096, 2, 4, H100_SXM)
        assert 0 < t2 < t4

    def test_simulated_imbalance_tracks_analytic(self):
        sim, analytic = simulate_ep_imbalance(
            MIXTRAL_8X7B.moe, ep=4, num_tokens=64, num_trials=128,
            rng=np.random.default_rng(0),
        )
        assert sim > 1.0
        assert abs(sim - analytic) < 0.25

    def test_imbalance_shrinks_with_tokens(self):
        rng = np.random.default_rng(1)
        small, _ = simulate_ep_imbalance(MIXTRAL_8X7B.moe, 4, 8, 64, rng)
        large, _ = simulate_ep_imbalance(MIXTRAL_8X7B.moe, 4, 512, 64, rng)
        assert large < small


class TestReplicatedPlacement:
    def test_round_robin_replicas_land_on_distinct_devices(self):
        from repro.parallel.expert_parallel import (
            replicated_round_robin_placement,
        )

        placement = replicated_round_robin_placement(8, 4, replicas=2)
        assert placement.num_experts == 8
        assert placement.replication_factor == 2
        for devices in placement.devices_of_expert:
            assert len(set(devices)) == len(devices) == 2

    def test_primary_matches_unreplicated_round_robin(self):
        from repro.parallel.expert_parallel import (
            replicated_round_robin_placement,
        )

        placement = replicated_round_robin_placement(8, 4, replicas=2)
        assert placement.primary().device_of_expert == \
            round_robin_placement(8, 4).device_of_expert

    def test_surviving_and_lost_experts(self):
        from repro.parallel.expert_parallel import (
            replicated_round_robin_placement,
        )

        two = replicated_round_robin_placement(8, 4, replicas=2)
        assert two.lost_experts({0}) == []  # every expert has a replica
        one = replicated_round_robin_placement(8, 4, replicas=1)
        lost = one.lost_experts({0})
        assert lost == one.experts_on_device(0)
        assert all(not s for e, s in
                   enumerate(one.surviving_replicas({0})) if e in lost)

    def test_validation(self):
        from repro.parallel.expert_parallel import (
            ReplicatedExpertPlacement,
            replicated_round_robin_placement,
        )

        with pytest.raises(ValueError):
            replicated_round_robin_placement(8, 4, replicas=0)
        with pytest.raises(ValueError):
            replicated_round_robin_placement(8, 4, replicas=5)
        with pytest.raises(ValueError):
            ReplicatedExpertPlacement(devices_of_expert=((),), num_devices=2)
        with pytest.raises(ValueError):
            ReplicatedExpertPlacement(devices_of_expert=((0, 0),),
                                      num_devices=2)
        with pytest.raises(ValueError):
            ReplicatedExpertPlacement(devices_of_expert=((0, 7),),
                                      num_devices=2)
