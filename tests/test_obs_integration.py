"""End-to-end observability tests: instrumented engine runs, trace
validity, disable-mode identity, and Fig. 15 regeneration from a live run.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.cli import main
from repro.models.zoo import get_model
from repro.obs.harness import reference_serving_run, traced_serving_run
from repro.obs.instrument import Instrumentation
from repro.obs.routing import EngineRoutingProbe
from repro.serving.events import EventType
from repro.workloads.multimodal import (
    MMEStream,
    build_layer_routers,
    run_activation_study,
)


@pytest.fixture(scope="module")
def traced():
    return traced_serving_run(num_requests=6, input_tokens=128,
                              output_tokens=32)


class TestTracedEngineRun:
    def test_trace_has_nested_engine_spans(self, traced):
        _, obs = traced
        events = obs.tracer.to_chrome_trace()["traceEvents"]
        names = {e["name"] for e in events}
        assert {"engine.step", "engine.prefill", "engine.decode",
                "scheduler.schedule", "perfmodel.iteration_cost",
                "kv.allocate", "kv.append", "kv.free"} <= names
        assert obs.tracer.open_spans() == []  # every span closed

    def test_trace_json_round_trips(self, traced, tmp_path):
        _, obs = traced
        path = obs.tracer.write(tmp_path / "trace.json")
        data = json.loads(path.read_text())
        begins = sum(1 for e in data["traceEvents"] if e["ph"] == "B")
        ends = sum(1 for e in data["traceEvents"] if e["ph"] == "E")
        assert begins == ends > 0

    def test_phase_spans_cover_the_makespan(self, traced):
        result, obs = traced
        totals = obs.tracer.span_totals("engine")
        step_total, step_count = totals["engine.step"]
        assert step_total == pytest.approx(result.makespan, rel=1e-9)
        assert step_count == result.log.num_iterations
        phase_total = totals["engine.prefill"][0] + totals["engine.decode"][0]
        assert phase_total == pytest.approx(result.makespan, rel=1e-9)

    def test_metrics_match_run_outcome(self, traced):
        result, obs = traced
        reg = obs.metrics
        assert reg.counter("requests_finished_total").value == result.num_requests
        ttft = reg.histogram("ttft_seconds")
        assert ttft.count == result.num_requests
        assert ttft.mean == pytest.approx(result.mean_ttft())
        e2e = reg.histogram("e2e_latency_seconds")
        assert e2e.mean == pytest.approx(result.mean_e2e())
        steps = reg.counter("engine_iterations_total",
                            labels={"phase": "decode"})
        assert steps.value == result.log.count(EventType.DECODE)

    def test_queue_wait_histogram_populated(self, traced):
        _, obs = traced
        qw = obs.metrics.histogram("queue_wait_seconds")
        assert qw.count == 6  # one admission per request

    def test_routing_probe_saw_all_tokens(self, traced):
        result, obs = traced
        assert obs.routing is not None
        assert obs.routing.tokens_seen == sum(
            e.num_tokens for e in result.log.events
        )


class TestDisableModeIdentity:
    """With instrumentation off (or None), results are bit-identical."""

    @staticmethod
    def _fingerprint(result):
        return (
            result.makespan,
            result.kv_hit_rate,
            tuple((e.time, e.type, e.request_ids, e.num_tokens, e.duration_s,
                   e.kv_utilization) for e in result.log.events),
            tuple((r.request_id, r.first_scheduled_time, r.first_token_time,
                   r.finish_time, r.generated_tokens, r.num_preemptions)
                  for r in result.requests),
        )

    def test_none_off_and_on_agree(self):
        kwargs = dict(num_requests=5, input_tokens=96, output_tokens=24,
                      arrival_interval=0.001)
        baseline = self._fingerprint(reference_serving_run(**kwargs))
        off = self._fingerprint(reference_serving_run(
            instrumentation=Instrumentation.off(), **kwargs))
        on = self._fingerprint(reference_serving_run(
            instrumentation=Instrumentation.on(
                model=get_model("OLMoE-1B-7B")), **kwargs))
        assert off == baseline
        assert on == baseline  # observation must never perturb the sim

    def test_off_instrumentation_records_nothing(self):
        obs = Instrumentation.off()
        reference_serving_run(num_requests=2, input_tokens=64,
                              output_tokens=8, instrumentation=obs)
        assert obs.tracer.num_events == 0
        assert len(obs.metrics) == 0


class TestFig15Reproduction:
    """The routing probe on a live engine run reproduces the Fig. 15
    per-expert activation-frequency ordering."""

    def test_live_engine_ordering_matches_activation_study(self):
        model = get_model("MolmoE-1B")
        study = run_activation_study(
            model, MMEStream(), np.random.default_rng(7),
            max_routed_tokens=60_000,
        )
        ref_counts = study.heatmap().sum(axis=0)
        ref_order = list(np.argsort(-ref_counts))

        # identical rng advancement -> identical calibrated routers
        rng = np.random.default_rng(7)
        MMEStream().total_tokens(rng)
        routers = build_layer_routers(model, 128, rng)
        probe = EngineRoutingProbe(model, rng=np.random.default_rng(123),
                                   routers=routers)
        reference_serving_run(
            "MolmoE-1B", num_requests=32, input_tokens=512, output_tokens=64,
            instrumentation=Instrumentation(routing=probe),
        )
        live_counts = probe.telemetry.heatmap().sum(axis=0)
        live_order = probe.telemetry.activation_ordering()

        assert live_order[0] == ref_order[0]
        assert set(live_order[:8]) == set(ref_order[:8])
        # rank-correlate the full frequency map (Spearman)
        def ranks(c):
            r = np.empty(len(c))
            r[np.argsort(-c)] = np.arange(len(c))
            return r
        rho = np.corrcoef(ranks(ref_counts), ranks(live_counts))[0, 1]
        assert rho > 0.9


class TestCLI:
    def test_trace_subcommand_writes_valid_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        metrics_out = tmp_path / "metrics.prom"
        rc = main(["trace", "OLMoE-1B-7B", "--requests", "3",
                   "--output-tokens", "8", "--out", str(out),
                   "--metrics-out", str(metrics_out)])
        assert rc == 0
        data = json.loads(out.read_text())
        names = {e["name"] for e in data["traceEvents"]}
        assert {"engine.step", "engine.prefill", "engine.decode",
                "scheduler.schedule", "kv.allocate"} <= names
        assert "# TYPE ttft_seconds histogram" in metrics_out.read_text()
        stdout = capsys.readouterr().out
        assert "Where the time went" in stdout
        assert "Expert routing" in stdout

    def test_metrics_subcommand_prometheus(self, capsys):
        rc = main(["metrics", "--requests", "2", "--output-tokens", "8"])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "# TYPE step_time_seconds histogram" in stdout
        assert "requests_finished_total 2.0" in stdout

    def test_metrics_subcommand_json(self, capsys):
        rc = main(["metrics", "--requests", "2", "--output-tokens", "8",
                   "--json"])
        assert rc == 0
        parsed = json.loads(capsys.readouterr().out)
        assert any(m["name"] == "ttft_seconds" for m in parsed["metrics"])
