"""Tests for repro.models.config."""

from __future__ import annotations

import pytest

from repro.models.config import (
    AttentionConfig,
    AttentionKind,
    ModelConfig,
    MoEConfig,
    VisionConfig,
)


class TestAttentionConfig:
    def test_gqa_group_size(self):
        cfg = AttentionConfig(num_heads=32, num_kv_heads=8, head_dim=128)
        assert cfg.group_size == 4

    def test_mha_requires_equal_heads(self):
        with pytest.raises(ValueError, match="MHA requires"):
            AttentionConfig(num_heads=8, num_kv_heads=4, head_dim=16,
                            kind=AttentionKind.MHA)

    def test_heads_must_divide(self):
        with pytest.raises(ValueError, match="multiple"):
            AttentionConfig(num_heads=10, num_kv_heads=4, head_dim=16)

    def test_rejects_nonpositive_heads(self):
        with pytest.raises(ValueError):
            AttentionConfig(num_heads=0, num_kv_heads=1, head_dim=16)
        with pytest.raises(ValueError):
            AttentionConfig(num_heads=4, num_kv_heads=-1, head_dim=16)

    def test_mla_requires_lora_rank(self):
        with pytest.raises(ValueError, match="kv_lora_rank"):
            AttentionConfig(num_heads=16, num_kv_heads=16, head_dim=192,
                            kind=AttentionKind.MLA)

    def test_kv_entries_gqa(self):
        cfg = AttentionConfig(num_heads=32, num_kv_heads=8, head_dim=128)
        assert cfg.kv_entries_per_token() == 2 * 8 * 128

    def test_kv_entries_mla_native_is_compressed(self):
        mla = AttentionConfig(
            num_heads=16, num_kv_heads=16, head_dim=192, kind=AttentionKind.MLA,
            kv_lora_rank=512, qk_rope_head_dim=64, qk_nope_head_dim=128,
            v_head_dim=128,
        )
        assert mla.kv_entries_per_token(mla_native=True) == 512 + 64
        gqa = AttentionConfig(num_heads=16, num_kv_heads=16, head_dim=192)
        assert mla.kv_entries_per_token(True) < gqa.kv_entries_per_token()

    def test_kv_entries_mla_materialized_default(self):
        """Without native MLA kernels the decompressed K/V are cached."""
        mla = AttentionConfig(
            num_heads=16, num_kv_heads=16, head_dim=192, kind=AttentionKind.MLA,
            kv_lora_rank=512, qk_rope_head_dim=64, qk_nope_head_dim=128,
            v_head_dim=128,
        )
        assert mla.kv_entries_per_token() == 16 * (192 + 128)
        assert mla.kv_entries_per_token() > mla.kv_entries_per_token(True)


class TestMoEConfig:
    def test_sparsity(self):
        moe = MoEConfig(num_experts=8, top_k=2, expert_ffn_dim=64)
        assert moe.sparsity == pytest.approx(0.25)

    def test_top_k_bounds(self):
        with pytest.raises(ValueError):
            MoEConfig(num_experts=8, top_k=0, expert_ffn_dim=64)
        with pytest.raises(ValueError):
            MoEConfig(num_experts=8, top_k=9, expert_ffn_dim=64)

    def test_shared_expert_requires_dim(self):
        with pytest.raises(ValueError, match="shared"):
            MoEConfig(num_experts=8, top_k=2, expert_ffn_dim=64,
                      num_shared_experts=2)

    def test_with_pruned_experts_caps_top_k(self):
        moe = MoEConfig(num_experts=8, top_k=4, expert_ffn_dim=64)
        pruned = moe.with_pruned_experts(2)
        assert pruned.num_experts == 2
        assert pruned.top_k == 2

    def test_with_pruned_experts_bounds(self):
        moe = MoEConfig(num_experts=8, top_k=2, expert_ffn_dim=64)
        with pytest.raises(ValueError):
            moe.with_pruned_experts(0)
        with pytest.raises(ValueError):
            moe.with_pruned_experts(9)

    def test_with_ffn_dim(self):
        moe = MoEConfig(num_experts=8, top_k=2, expert_ffn_dim=64)
        assert moe.with_ffn_dim(32).expert_ffn_dim == 32
        with pytest.raises(ValueError):
            moe.with_ffn_dim(0)

    def test_with_top_k(self):
        moe = MoEConfig(num_experts=8, top_k=2, expert_ffn_dim=64)
        assert moe.with_top_k(8).top_k == 8
        with pytest.raises(ValueError):
            moe.with_top_k(16)


class TestModelConfig:
    def test_all_layers_moe_by_default(self, tiny_model):
        assert tiny_model.moe_layer_indices() == [0, 1]
        assert tiny_model.num_moe_layers == 2
        assert tiny_model.is_moe

    def test_first_k_dense(self, tiny_moe):
        model = ModelConfig(
            name="m", num_layers=4, hidden_size=64, vocab_size=128,
            attention=AttentionConfig(num_heads=4, num_kv_heads=4, head_dim=16),
            dense_ffn_dim=96, moe=tiny_moe, first_k_dense=1,
        )
        assert not model.is_moe_layer(0)
        assert model.is_moe_layer(1)
        assert model.num_dense_layers == 1

    def test_moe_layer_stride(self, tiny_moe):
        model = ModelConfig(
            name="m", num_layers=4, hidden_size=64, vocab_size=128,
            attention=AttentionConfig(num_heads=4, num_kv_heads=4, head_dim=16),
            dense_ffn_dim=96, moe=tiny_moe, moe_layer_stride=2,
        )
        assert model.moe_layer_indices() == [0, 2]

    def test_dense_model_has_no_moe_layers(self, tiny_dense_model):
        assert not tiny_dense_model.is_moe
        assert tiny_dense_model.moe_layer_indices() == []

    def test_layer_index_bounds(self, tiny_model):
        with pytest.raises(IndexError):
            tiny_model.is_moe_layer(2)
        with pytest.raises(IndexError):
            tiny_model.is_moe_layer(-1)

    def test_vlm_requires_vision(self, tiny_moe):
        with pytest.raises(ValueError, match="vision"):
            ModelConfig(
                name="m", num_layers=2, hidden_size=64, vocab_size=128,
                attention=AttentionConfig(num_heads=4, num_kv_heads=4, head_dim=16),
                dense_ffn_dim=0, moe=tiny_moe, modality="text+image",
            )

    def test_unknown_modality(self, tiny_moe):
        with pytest.raises(ValueError, match="modality"):
            ModelConfig(
                name="m", num_layers=2, hidden_size=64, vocab_size=128,
                attention=AttentionConfig(num_heads=4, num_kv_heads=4, head_dim=16),
                dense_ffn_dim=0, moe=tiny_moe, modality="audio",
            )

    def test_scaled_preserves_structure(self, tiny_model):
        scaled = tiny_model.scaled(0.5)
        assert scaled.num_layers == tiny_model.num_layers
        assert scaled.moe.num_experts == tiny_model.moe.num_experts
        assert scaled.moe.top_k == tiny_model.moe.top_k
        assert scaled.hidden_size < tiny_model.hidden_size
        assert scaled.hidden_size % scaled.attention.num_heads == 0

    def test_scaled_rejects_bad_factor(self, tiny_model):
        with pytest.raises(ValueError):
            tiny_model.scaled(0.0)
        with pytest.raises(ValueError):
            tiny_model.scaled(1.5)

    def test_with_moe_replaces_block(self, tiny_model):
        new_moe = MoEConfig(num_experts=4, top_k=1, expert_ffn_dim=16)
        assert tiny_model.with_moe(new_moe).moe.num_experts == 4

    def test_iter_layers(self, tiny_model):
        layers = list(tiny_model.iter_layers())
        assert layers == [(0, True), (1, True)]


class TestVisionConfig:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            VisionConfig(num_layers=0, hidden_size=64, ffn_dim=128,
                         num_heads=4, image_tokens=16)
