"""Tests for repro.obs.regress — baselines, drift detection, attribution."""

from __future__ import annotations

import dataclasses
import json

from repro.core.experiment import ExperimentResult
from repro.core.results import ResultTable
from repro.obs.fingerprint import Fingerprint, fingerprint_result
from repro.obs.regress import (
    BaselineStore,
    OverheadReport,
    Tolerance,
    compare_fingerprints,
    render_drift_report,
    suspect_modules,
)


def _fp(sim=None, wall=None, digests=None, structure=None) -> Fingerprint:
    return Fingerprint(
        exp_id="figX",
        sim=dict({"m": 1.0} if sim is None else sim),
        wall=dict({"runtime_s": 0.5} if wall is None else wall),
        digests=dict({"t": "a" * 64} if digests is None else digests),
        structure=dict({"t": {"rows": 2, "columns": ["a"]}}
                       if structure is None else structure),
    )


class TestCompare:
    def test_identical_is_clean(self):
        assert compare_fingerprints(_fp(), _fp()) == []

    def test_sim_drift_detected(self):
        drifts = compare_fingerprints(_fp(sim={"m": 1.0}),
                                      _fp(sim={"m": 1.0001}))
        assert [d.metric for d in drifts] == ["m"]
        assert drifts[0].kind == "sim"

    def test_sim_band_is_tight(self):
        # a 1e-7 relative change must trip the default exact band
        drifts = compare_fingerprints(_fp(sim={"m": 1.0}),
                                      _fp(sim={"m": 1.0 + 1e-7}))
        assert drifts

    def test_tolerance_override_by_substring(self):
        tol = Tolerance(overrides={"imbalance": 1e-2})
        drifts = compare_fingerprints(
            _fp(sim={"rolling_imbalance": 1.0}),
            _fp(sim={"rolling_imbalance": 1.001}), tol)
        assert drifts == []

    def test_missing_sim_metric(self):
        drifts = compare_fingerprints(_fp(sim={"m": 1.0}), _fp(sim={}))
        assert drifts and drifts[0].current == "missing"

    def test_wall_ignored_by_default(self):
        drifts = compare_fingerprints(_fp(wall={"runtime_s": 0.1}),
                                      _fp(wall={"runtime_s": 99.0}))
        assert drifts == []

    def test_wall_gated_on_request(self):
        drifts = compare_fingerprints(_fp(wall={"runtime_s": 0.1}),
                                      _fp(wall={"runtime_s": 99.0}),
                                      check_wall=True)
        assert [d.kind for d in drifts] == ["wall"]

    def test_wall_band_is_loose(self):
        drifts = compare_fingerprints(_fp(wall={"runtime_s": 1.0}),
                                      _fp(wall={"runtime_s": 1.3}),
                                      check_wall=True)
        assert drifts == []

    def test_digest_drift(self):
        drifts = compare_fingerprints(_fp(digests={"t": "a" * 64}),
                                      _fp(digests={"t": "b" * 64}))
        assert [d.kind for d in drifts] == ["digest"]

    def test_structure_drift(self):
        drifts = compare_fingerprints(
            _fp(structure={"t": {"rows": 2, "columns": ["a"]}}),
            _fp(structure={"t": {"rows": 3, "columns": ["a"]}}))
        assert any(d.kind == "structure" for d in drifts)

    def test_describe_names_figure_metric_and_suspect(self):
        drifts = compare_fingerprints(_fp(sim={"m": 2.0}),
                                      _fp(sim={"m": 3.0}))
        d = dataclasses.replace(drifts[0], suspect="src/repro/x.py")
        text = d.describe()
        assert "figX" in text and "m" in text
        assert "+50.000%" in text
        assert "src/repro/x.py" in text
        assert "src/repro/x.py" in render_drift_report([d])


class TestBaselineStore:
    def test_record_and_reload(self, tmp_path):
        store = BaselineStore(tmp_path)
        path = store.record(_fp(), note="first", git_sha="abc123")
        assert path.name == "BENCH_figX.json"
        assert store.known_ids() == ["figX"]
        assert store.latest_sha("figX") == "abc123"
        loaded = store.latest_fingerprint("figX")
        assert loaded is not None and loaded.to_dict() == _fp().to_dict()

    def test_trajectory_appends(self, tmp_path):
        store = BaselineStore(tmp_path)
        store.record(_fp(sim={"m": 1.0}), git_sha="a")
        store.record(_fp(sim={"m": 2.0}), git_sha="b")
        records = store.records("figX")
        assert len(records) == 2
        assert store.latest_fingerprint("figX").sim["m"] == 2.0
        assert store.latest_sha("figX") == "b"

    def test_missing_experiment(self, tmp_path):
        store = BaselineStore(tmp_path)
        assert store.latest_fingerprint("nope") is None
        assert store.records("nope") == []

    def test_file_is_plain_json(self, tmp_path):
        store = BaselineStore(tmp_path)
        store.record(_fp())
        data = json.loads(store.path("figX").read_text())
        assert data["exp_id"] == "figX"
        assert data["records"][0]["fingerprint"]["sim"]


class TestSuspects:
    def test_loaded_dependency_ranked_first(self):
        deps = {"src/repro/serving/engine.py"}
        changed = ["README.md", "src/repro/obs/trace.py",
                   "src/repro/serving/engine.py"]
        suspects = suspect_modules(changed, deps)
        assert suspects[0] == "src/repro/serving/engine.py"
        assert "src/repro/obs/trace.py" in suspects
        assert "README.md" not in suspects

    def test_loaded_modules_reflect_imports(self):
        from repro.obs.regress import loaded_repro_modules

        deps = loaded_repro_modules()
        assert "src/repro/obs/regress.py" in deps
        assert all(p.startswith("src/repro/") for p in deps)


class TestOverhead:
    def test_report_math(self):
        ok = OverheadReport(baseline_s=1.0, disabled_s=1.01, rounds=3)
        bad = OverheadReport(baseline_s=1.0, disabled_s=1.2, rounds=3)
        assert ok.within() and not bad.within()
        assert "+1.00%" in ok.describe()

    def test_abs_slack_absorbs_jitter_on_tiny_runs(self):
        report = OverheadReport(baseline_s=0.001, disabled_s=0.002, rounds=3)
        assert report.within()  # 2ms absolute slack


class TestEndToEnd:
    def test_real_result_clean_then_perturbed(self, tmp_path):
        table = ResultTable("decode", ("batch", "step_s"))
        table.add(batch=1, step_s=0.010)
        result = ExperimentResult(exp_id="figY", title="t", paper_claim="c",
                                  tables=[table], runtime_s=0.1)
        store = BaselineStore(tmp_path)
        store.record(fingerprint_result(result))
        assert compare_fingerprints(store.latest_fingerprint("figY"),
                                    fingerprint_result(result)) == []
        table.rows[0]["step_s"] = 0.011
        drifts = compare_fingerprints(store.latest_fingerprint("figY"),
                                      fingerprint_result(result))
        assert any(d.metric == "decode.step_s:sum" for d in drifts)
        assert any(d.kind == "digest" for d in drifts)
