"""OBS0xx rules: metric-name unit suffixes, simulated-clock spans."""

import textwrap

from repro.lint.core import get_rule, lint_source
from repro.lint.obs import ALLOWED_SUFFIXES

METRICS_REL = "src/repro/obs/fixture.py"
SERVING_REL = "src/repro/serving/fixture.py"
FAULTS_REL = "src/repro/faults/fixture.py"
CLUSTER_REL = "src/repro/obs/cluster.py"


def _src(text: str) -> str:
    return textwrap.dedent(text).lstrip("\n")


def _lint(rule_id: str, text: str, rel: str):
    return lint_source(_src(text), get_rule(rule_id), rel=rel)


class TestMetricUnitSuffix:
    def test_flags_bare_metric_name(self):
        vs = _lint("OBS001", """
            def f(obs):
                obs.metrics.histogram("queue_wait").observe(0.1)
        """, METRICS_REL)
        assert len(vs) == 1
        assert "queue_wait" in vs[0].message
        assert vs[0].rule == "OBS001"

    def test_unit_vocabulary_suffixes_clean(self):
        assert _lint("OBS001", """
            def f(obs):
                obs.metrics.histogram("ttft_seconds").observe(0.1)
                obs.metrics.counter("tokens_processed_total").inc()
                obs.metrics.gauge("engine_throughput_tok_s").set(1.0)
                obs.metrics.gauge("kv_pool_bytes").set(2.0)
        """, METRICS_REL) == []

    def test_dimensionless_suffixes_clean(self):
        assert _lint("OBS001", """
            def f(registry):
                registry.gauge("kv_utilization").set(0.5)
                registry.gauge("cache_hit_ratio").set(0.9)
                registry.counter("requests_total").inc()
        """, METRICS_REL) == []

    def test_self_metrics_receiver_checked(self):
        vs = _lint("OBS001", """
            class C:
                def f(self):
                    self.metrics.counter("preemptions").inc()
        """, METRICS_REL)
        assert len(vs) == 1

    def test_tracer_counter_exempt(self):
        # Chrome trace counter tracks are display series, not registry
        # metrics; the receiver discrimination must keep them out of scope
        assert _lint("OBS001", """
            def f(obs, now):
                obs.tracer.counter("scheduler_queues", now, waiting=3)
        """, METRICS_REL) == []

    def test_dynamic_name_skipped(self):
        assert _lint("OBS001", """
            def f(obs, name):
                obs.metrics.counter(name).inc()
        """, METRICS_REL) == []

    def test_out_of_scope_path_skipped(self):
        assert _lint("OBS001", """
            def f(obs):
                obs.metrics.counter("preemptions").inc()
        """, rel="benchmarks/bench_fixture.py") == []

    def test_suppression(self):
        assert _lint("OBS001", """
            def f(obs):
                obs.metrics.counter("preemptions").inc()  # simlint: disable=OBS001
        """, METRICS_REL) == []

    def test_cluster_gauges_checked(self):
        # the cluster-telemetry gauges are ordinary registry metrics and
        # must carry unit suffixes like everything else
        vs = _lint("OBS001", """
            def publish(self, metrics):
                metrics.gauge("link_utilization", link="tp").set(0.4)
                metrics.gauge("cluster_sparse_mfu").set(0.1)
        """, CLUSTER_REL)
        assert len(vs) == 1
        assert "cluster_sparse_mfu" in vs[0].message

    def test_every_allowed_suffix_accepted(self):
        for suffix in ALLOWED_SUFFIXES:
            vs = _lint("OBS001", f"""
                def f(obs):
                    obs.metrics.gauge("fixture{suffix}").set(1.0)
            """, METRICS_REL)
            assert vs == [], f"suffix {suffix} rejected"


class TestSimClockSpan:
    def test_flags_wall_clock_timestamp(self):
        vs = _lint("OBS002", """
            import time

            def f(obs, name):
                obs.tracer.begin(name, time.time())
        """, SERVING_REL)
        assert len(vs) == 1
        assert "host clock" in vs[0].message

    def test_flags_wall_clock_inside_expression(self):
        vs = _lint("OBS002", """
            import time

            def f(obs, name, offset_s):
                obs.tracer.instant(name, time.monotonic() + offset_s)
        """, FAULTS_REL)
        assert len(vs) == 1

    def test_flags_literal_timestamp(self):
        vs = _lint("OBS002", """
            def f(obs, name):
                obs.tracer.instant(name, 1.5)
        """, SERVING_REL)
        assert len(vs) == 1
        assert "literal" in vs[0].message

    def test_flags_ts_keyword(self):
        vs = _lint("OBS002", """
            import time

            def f(obs, name):
                obs.tracer.begin(name, ts=time.perf_counter())
        """, SERVING_REL)
        assert len(vs) == 1

    def test_flags_wall_span_channel(self):
        vs = _lint("OBS002", """
            def f(obs, name):
                with obs.tracer.wall_span(name):
                    pass
        """, SERVING_REL)
        assert len(vs) == 1
        assert "wall_span" in vs[0].message

    def test_simulated_clock_clean(self):
        assert _lint("OBS002", """
            class Engine:
                def step(self, obs, duration_s):
                    obs.tracer.begin("engine.step", self.clock)
                    obs.tracer.instant("tick", obs.now)
                    obs.tracer.counter("kv", self.clock + duration_s, used=1)
        """, SERVING_REL) == []

    def test_out_of_scope_path_skipped(self):
        # the obs layer itself owns the wall channel (tracer internals,
        # experiment wall spans); OBS002 only polices the simulated stack
        assert _lint("OBS002", """
            import time

            def f(obs, name):
                obs.tracer.begin(name, time.time())
                with obs.tracer.wall_span(name):
                    pass
        """, rel="src/repro/obs/fixture.py") == []

    def test_cluster_module_in_scope(self):
        # device lanes / link counters are simulated-time series: the
        # cluster module gets the same clock pin as the serving stack
        vs = _lint("OBS002", """
            import time

            def f(obs, name):
                obs.tracer.counter(name, time.time(), busy=1.0)
        """, CLUSTER_REL)
        assert len(vs) == 1
        assert "host clock" in vs[0].message

    def test_cluster_wall_span_flagged(self):
        vs = _lint("OBS002", """
            def f(obs, name):
                with obs.tracer.wall_span(name):
                    pass
        """, CLUSTER_REL)
        assert len(vs) == 1

    def test_suppression(self):
        assert _lint("OBS002", """
            def f(obs, name):
                obs.tracer.instant(name, 1.5)  # simlint: disable=OBS002
        """, SERVING_REL) == []


class TestSelfCheck:
    def test_repo_is_clean_under_obs_rules(self):
        import pathlib

        from repro.lint.core import run_lint, select_rules

        root = pathlib.Path(__file__).resolve().parent.parent
        assert run_lint(root, rules=select_rules("OBS")) == []
