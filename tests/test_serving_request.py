"""Tests for repro.serving.request."""

from __future__ import annotations

import pytest

from repro.serving.request import Request, RequestState, SamplingParams


class TestSamplingParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingParams(max_tokens=0)
        with pytest.raises(ValueError):
            SamplingParams(max_tokens=4, eos_probability=1.5)


class TestRequest:
    def test_initial_state(self):
        r = Request(request_id=1, prompt_tokens=100,
                    sampling=SamplingParams(max_tokens=50))
        assert r.state is RequestState.WAITING
        assert r.is_prefill_pending
        assert r.remaining_prefill == 100
        assert r.total_length_budget == 150
        assert r.ttft is None and r.e2e_latency is None

    def test_prefill_completion(self):
        r = Request(1, 100, SamplingParams(max_tokens=10))
        r.kv_tokens = 100
        assert not r.is_prefill_pending
        assert r.context_length == 100

    def test_recompute_preemption_refills_generated(self):
        """After a recompute preemption the generated prefix must be
        re-prefilled (vLLM semantics) — except the newest sampled token,
        whose KV slot the next decode step appends (steady state is
        ``kv_tokens == prompt + generated - 1``)."""
        r = Request(1, 100, SamplingParams(max_tokens=50))
        r.kv_tokens = 109
        r.generated_tokens = 10
        r.reset_for_recompute()
        assert r.state is RequestState.PREEMPTED
        assert r.kv_tokens == 0
        assert r.remaining_prefill == 109
        assert r.num_preemptions == 1

    def test_metric_views(self):
        r = Request(1, 10, SamplingParams(max_tokens=5), arrival_time=2.0)
        r.first_token_time = 2.5
        r.finish_time = 4.0
        assert r.ttft == pytest.approx(0.5)
        assert r.e2e_latency == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Request(1, 0, SamplingParams(max_tokens=5))
        with pytest.raises(ValueError):
            Request(1, 10, SamplingParams(max_tokens=5), arrival_time=-1)
        with pytest.raises(ValueError):
            Request(1, 10, SamplingParams(max_tokens=5), num_images=-1)
