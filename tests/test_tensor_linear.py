"""Tests for repro.tensor.linear."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor.dtypes import FP8_E4M3, INT8
from repro.tensor.linear import Linear, init_weight


class TestInitWeight:
    def test_shape_and_scale(self, rng):
        w = init_weight(rng, 256, 128)
        assert w.shape == (256, 128)
        assert w.std() == pytest.approx(1 / np.sqrt(256), rel=0.15)

    def test_rejects_bad_dims(self, rng):
        with pytest.raises(ValueError):
            init_weight(rng, 0, 4)


class TestLinear:
    def test_matmul(self, rng):
        w = rng.normal(0, 1, (8, 4)).astype(np.float32)
        layer = Linear(w)
        x = rng.normal(0, 1, (3, 8)).astype(np.float32)
        assert np.allclose(layer(x), x @ w, atol=1e-6)

    def test_batched_leading_dims(self, rng):
        layer = Linear.random(rng, 8, 4)
        x = rng.normal(0, 1, (2, 5, 8)).astype(np.float32)
        assert layer(x).shape == (2, 5, 4)

    def test_dim_mismatch(self, rng):
        layer = Linear.random(rng, 8, 4)
        with pytest.raises(ValueError, match="in_features"):
            layer(np.zeros((2, 9)))

    def test_weight_must_be_2d(self):
        with pytest.raises(ValueError):
            Linear(np.zeros(8))

    def test_quantized_storage_changes_weights(self, rng):
        w = rng.normal(0, 1, (32, 16)).astype(np.float32)
        q = Linear(w, FP8_E4M3)
        assert not np.array_equal(q.weight, w)
        assert np.abs(q.weight - w).mean() < 0.05

    def test_storage_bytes(self, rng):
        fp32 = Linear.random(rng, 16, 8)
        int8 = Linear.random(rng, 16, 8, INT8)
        assert fp32.storage_bytes() == 16 * 8 * 4
        assert int8.storage_bytes() == 16 * 8 * 1

    def test_num_params(self, rng):
        assert Linear.random(rng, 16, 8).num_params == 128
