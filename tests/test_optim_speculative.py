"""Tests for repro.optim.speculative (paper §6.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.gpus import H100_SXM
from repro.models.zoo import QWEN3_0_6B, QWEN3_1_7B, QWEN3_4B, QWEN3_8B, QWEN3_30B_A3B
from repro.optim.speculative import (
    SpeculativeDecodingModel,
    default_acceptance_rate,
    expected_tokens_per_cycle,
    simulate_accepted_tokens,
)


class TestExpectedTokens:
    def test_closed_form_values(self):
        # alpha=0: only the bonus token
        assert expected_tokens_per_cycle(0.0, 4) == 1.0
        # alpha=0.5, k=1: 1 + 0.5
        assert expected_tokens_per_cycle(0.5, 1) == pytest.approx(1.5)

    def test_monotone_in_alpha_and_k(self):
        assert expected_tokens_per_cycle(0.8, 4) > expected_tokens_per_cycle(0.5, 4)
        assert expected_tokens_per_cycle(0.7, 8) > expected_tokens_per_cycle(0.7, 2)

    def test_bounded_by_k_plus_one(self):
        assert expected_tokens_per_cycle(0.99, 4) < 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_tokens_per_cycle(1.0, 4)
        with pytest.raises(ValueError):
            expected_tokens_per_cycle(0.5, 0)

    def test_simulation_converges_to_closed_form(self):
        alpha, k = 0.7, 4
        sim = simulate_accepted_tokens(alpha, k, 40_000,
                                       rng=np.random.default_rng(0))
        assert sim.mean() == pytest.approx(expected_tokens_per_cycle(alpha, k),
                                           rel=0.02)
        assert sim.min() >= 1 and sim.max() <= k + 1


class TestAcceptanceRate:
    def test_bigger_drafts_accept_more(self):
        alphas = [default_acceptance_rate(d, QWEN3_30B_A3B)
                  for d in (QWEN3_0_6B, QWEN3_1_7B, QWEN3_4B, QWEN3_8B)]
        assert all(a < b for a, b in zip(alphas, alphas[1:]))
        assert 0.3 <= alphas[0] < alphas[-1] <= 0.92

    def test_longer_context_lowers_acceptance(self):
        short = default_acceptance_rate(QWEN3_1_7B, QWEN3_30B_A3B, 128)
        long = default_acceptance_rate(QWEN3_1_7B, QWEN3_30B_A3B, 2048)
        assert long < short

    def test_context_validation(self):
        with pytest.raises(ValueError):
            default_acceptance_rate(QWEN3_1_7B, QWEN3_30B_A3B, 0)


@pytest.fixture(scope="module")
def spec_17b():
    return SpeculativeDecodingModel(
        QWEN3_30B_A3B, QWEN3_1_7B, H100_SXM, num_draft_tokens=4
    )


class TestThroughputModel:
    def test_cycle_time_positive_and_grows_with_k(self):
        t2 = SpeculativeDecodingModel(QWEN3_30B_A3B, QWEN3_1_7B, H100_SXM,
                                      num_draft_tokens=2).cycle_time(1, 512)
        t8 = SpeculativeDecodingModel(QWEN3_30B_A3B, QWEN3_1_7B, H100_SXM,
                                      num_draft_tokens=8).cycle_time(1, 512)
        assert 0 < t2 < t8

    def test_paper_draft_ordering(self):
        """Fig. 12: the mid-sized 1.7B draft wins; 0.6B and 8B lose."""
        thr = {}
        for draft in (QWEN3_0_6B, QWEN3_1_7B, QWEN3_4B, QWEN3_8B):
            m = SpeculativeDecodingModel(QWEN3_30B_A3B, draft, H100_SXM,
                                         num_draft_tokens=4)
            thr[draft.name] = m.decode_throughput(1, 512)
        assert max(thr, key=thr.get) == "Qwen3-1.7B"
        assert thr["Qwen3-1.7B"] > thr["Qwen3-8B"]
        assert thr["Qwen3-1.7B"] > thr["Qwen3-0.6B"]

    def test_throughput_declines_with_k(self):
        """Fig. 12: more draft tokens -> monotonically lower throughput."""
        rates = [
            SpeculativeDecodingModel(QWEN3_30B_A3B, QWEN3_1_7B, H100_SXM,
                                     num_draft_tokens=k).decode_throughput(1, 512)
            for k in (1, 2, 4, 8)
        ]
        assert all(a > b for a, b in zip(rates, rates[1:]))

    def test_throughput_declines_with_context(self, spec_17b):
        assert (spec_17b.decode_throughput(1, 128)
                > spec_17b.decode_throughput(1, 2048))

    def test_acceptance_override(self):
        m = SpeculativeDecodingModel(QWEN3_30B_A3B, QWEN3_1_7B, H100_SXM,
                                     num_draft_tokens=2, acceptance_rate=0.9)
        assert m.alpha(4096) == 0.9

    def test_generate_metrics(self, spec_17b):
        metrics = spec_17b.generate(1, 256, 128)
        assert metrics.ttft_s > 0
        assert metrics.e2e_latency_s > metrics.ttft_s
        assert metrics.throughput_tok_s > 0

    def test_bad_k(self):
        with pytest.raises(ValueError):
            SpeculativeDecodingModel(QWEN3_30B_A3B, QWEN3_1_7B, H100_SXM,
                                     num_draft_tokens=0)


class TestFunctionalAcceptanceLink:
    def test_agreement_measures_acceptance(self):
        """The functional engine closes the loop: top-1 agreement between a
        'draft' and a 'target' IS the per-token acceptance rate, and
        feeding it to the closed form bounds expected tokens/cycle."""
        from repro.evals.tasks import AgreementTask
        from repro.models.zoo import get_model
        from repro.moe.model import MoETransformer

        cfg = get_model("OLMoE-1B-7B").scaled(1 / 32)
        target = MoETransformer(cfg, seed=0, max_positions=64)
        # same weights, quantized: a high-agreement 'draft'
        draft = MoETransformer(cfg, seed=0, max_positions=64,
                               weight_dtype="fp8_e4m3")
        res = AgreementTask("probe", batch=32, seq_len=12).evaluate(target, draft)
        alpha = res.top1_agreement
        assert alpha > 0.4
        e = expected_tokens_per_cycle(min(alpha, 0.99), 4)
        assert 1.0 < e <= 5.0
        # an unrelated draft agrees far less -> fewer tokens per cycle
        stranger = MoETransformer(cfg, seed=99, max_positions=64)
        res2 = AgreementTask("probe", batch=32, seq_len=12).evaluate(target, stranger)
        assert res2.top1_agreement < alpha
