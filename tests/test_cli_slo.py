"""CLI tests: ``repro slo`` and the ``repro trace`` request filters."""

from __future__ import annotations

import json

import pytest

from repro.core.cli import main

# Small reference workload so each trace run stays well under a second.
FAST = ["--requests", "6", "--input-tokens", "128", "--output-tokens", "16"]


class TestSloCommand:
    def test_reports_budgets_and_pages(self, capsys):
        assert main(["slo"]) == 0
        out = capsys.readouterr().out
        assert "SLO scenario 'chaos_fault_storm'" in out
        assert "availability >=" in out
        assert "budget consumed" in out
        assert "[page] slo_burn_" in out

    def test_check_gate_replays_byte_identical(self, capsys):
        assert main(["slo", "--check"]) == 0
        out = capsys.readouterr().out
        assert "replay byte-identical" in out
        assert "fired deterministically" in out

    def test_out_writes_deterministic_json(self, capsys, tmp_path):
        path = tmp_path / "slo.json"
        assert main(["slo", "--out", str(path)]) == 0
        report = json.loads(path.read_text())
        assert report["scenario"] == "chaos_fault_storm"
        assert {b["slo"] for b in report["budgets"]} == {
            "ttft_p99", "availability"}
        assert report["alerts"]

    def test_custom_specs_override_defaults(self, capsys):
        assert main(["slo", "--spec", "p95 e2e < 100s"]) == 0
        out = capsys.readouterr().out
        assert "p95 e2e < 100s" in out
        assert "ttft" not in out

    def test_bundle_dir_receives_postmortems(self, capsys, tmp_path):
        bundles = tmp_path / "bundles"
        assert main(["slo", "--bundle-dir", str(bundles)]) == 0
        assert list(bundles.glob("slo_burn_*/slo.json"))

    def test_rejects_malformed_spec(self):
        with pytest.raises(ValueError, match="cannot parse SLO spec"):
            main(["slo", "--spec", "p99 vibes < ok"])


class TestTraceFilters:
    def test_request_filter_keeps_one_lifecycle(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", *FAST, "--out", str(out),
                     "--request", "2"]) == 0
        events = json.loads(out.read_text())["traceEvents"]
        payload = [e for e in events if e["ph"] != "M"]
        assert payload
        assert {e["args"]["request_id"] for e in payload
                if e["ph"] in ("B", "i") and "request_id" in e["args"]} \
            <= {2}

    def test_match_filter_selects_span_names(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", *FAST, "--out", str(out),
                     "--match", "prefill"]) == 0
        events = json.loads(out.read_text())["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "B"}
        assert names
        assert all("prefill" in n for n in names)

    def test_timeline_prints_causal_table(self, capsys):
        assert main(["trace", *FAST, "--timeline", "3"]) == 0
        out = capsys.readouterr().out
        assert "request 3 (req-000003)" in out
        for name in ("admit", "queue.wait", "first_token", "finish"):
            assert name in out

    def test_timeline_unknown_request_errors(self, capsys):
        assert main(["trace", *FAST, "--timeline", "99"]) == 1
        assert "no trace recorded" in capsys.readouterr().err

    def test_poisson_workload_traces(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", "--poisson", "8", "--requests", "24",
                     "--out", str(out), "--no-routing"]) == 0
        stdout = capsys.readouterr().out
        assert "24 requests" in stdout
        assert json.loads(out.read_text())["traceEvents"]
