"""Tests for repro.serving.prefix_cache and its scheduler/engine integration."""

from __future__ import annotations

import pytest

from repro.hardware.gpus import H100_SXM
from repro.models.zoo import OLMOE_1B_7B
from repro.perfmodel.inference import InferencePerfModel
from repro.serving.engine import ServingEngine
from repro.serving.prefix_cache import PrefixCachingKVCache
from repro.serving.request import Request, SamplingParams

BS = 16  # block size used throughout


@pytest.fixture
def cache():
    return PrefixCachingKVCache(num_blocks=32, block_size=BS)


class TestSharing:
    def test_first_request_registers(self, cache):
        cached = cache.allocate_with_prefix(1, 4 * BS, (101, 102, 103))
        assert cached == 0
        assert cache.stats.hits == 0
        assert cache.used_blocks == 4

    def test_second_request_shares(self, cache):
        cache.allocate_with_prefix(1, 4 * BS, (101, 102, 103))
        cached = cache.allocate_with_prefix(2, 4 * BS, (101, 102, 103))
        assert cached == 3 * BS
        assert cache.stats.hit_rate == pytest.approx(0.5)
        # 4 + 1 new private block (shared 3)
        assert cache.used_blocks == 5
        assert cache.block_table(1)[:3] == cache.block_table(2)[:3]

    def test_partial_prefix_match(self, cache):
        cache.allocate_with_prefix(1, 4 * BS, (101, 102, 103))
        cached = cache.allocate_with_prefix(2, 4 * BS, (101, 202, 203))
        assert cached == BS  # only the first block matches

    def test_miss_then_hit_stays_private(self, cache):
        """After the first miss, later matching hashes are not shared
        (their content depends on the differing prefix)."""
        cache.allocate_with_prefix(1, 3 * BS, (101, 102))
        cached = cache.allocate_with_prefix(2, 3 * BS, (999, 102))
        assert cached == 0
        assert set(cache.block_table(1)).isdisjoint(cache.block_table(2))

    def test_duplicate_hashes_rejected(self, cache):
        with pytest.raises(ValueError, match="duplicate"):
            cache.allocate_with_prefix(1, 4 * BS, (7, 7))

    def test_too_many_hashes_rejected(self, cache):
        with pytest.raises(ValueError, match="exceed"):
            cache.allocate_with_prefix(1, BS + 1, (1, 2))


class TestLifecycle:
    def test_free_keeps_cached_content(self, cache):
        cache.allocate_with_prefix(1, 3 * BS, (11, 12))
        cache.free(1)
        # content parked as reusable: a new request still hits
        cached = cache.allocate_with_prefix(2, 3 * BS, (11, 12))
        assert cached == 2 * BS

    def test_refcounted_free(self, cache):
        cache.allocate_with_prefix(1, 2 * BS, (11,))
        cache.allocate_with_prefix(2, 2 * BS, (11,))
        cache.free(1)
        # block still referenced by seq 2: a third sharer hits it
        assert cache.allocate_with_prefix(3, 2 * BS, (11,)) == BS
        cache.free(2)
        cache.free(3)
        assert cache.free_blocks == 32

    def test_eviction_under_pressure(self, cache):
        cache.allocate_with_prefix(1, 16 * BS, tuple(range(100, 116)))
        cache.free(1)  # all 16 blocks reusable
        # a non-matching allocation of 32 blocks must evict cached content
        cache.allocate(2, 32 * BS)
        assert cache.stats.evictions > 0
        # evicted content no longer hits
        cache.free(2)
        assert cache.allocate_with_prefix(3, 2 * BS, (100,)) in (0, BS)

    def test_grows_like_base_allocator(self, cache):
        cache.allocate_with_prefix(1, 2 * BS, (5,))
        cache.append_slots(1, BS)
        assert cache.num_tokens(1) == 3 * BS

    def test_reset_clears_cache(self, cache):
        cache.allocate_with_prefix(1, 2 * BS, (5,))
        cache.reset()
        assert cache.allocate_with_prefix(2, 2 * BS, (5,)) == 0


class TestEngineIntegration:
    def _engine(self, prefix: bool) -> ServingEngine:
        pm = InferencePerfModel(OLMOE_1B_7B, H100_SXM)
        return ServingEngine(pm, kv_pool_tokens=65536,
                             enable_prefix_caching=prefix)

    @staticmethod
    def _request(rid: int, shared_blocks: int = 30) -> Request:
        # 512-token prompt whose first `shared_blocks` blocks are a shared
        # system prompt (same hashes across requests)
        return Request(
            request_id=rid,
            prompt_tokens=512,
            sampling=SamplingParams(max_tokens=16),
            prompt_block_hashes=tuple(range(shared_blocks)),
        )

    def test_prefix_caching_cuts_ttft(self):
        slow = self._engine(prefix=False)
        fast = self._engine(prefix=True)
        for eng in (slow, fast):
            for i in range(8):
                eng.submit(self._request(i))
        r_slow = slow.run()
        r_fast = fast.run()
        # the first request pays full prefill in both engines, later ones
        # hit the shared prefix only with caching on
        later_slow = [r.ttft for r in r_slow.requests[1:]]
        later_fast = [r.ttft for r in r_fast.requests[1:]]
        assert sum(later_fast) < sum(later_slow)
        assert r_fast.kv_hit_rate > 0.5
        assert r_slow.kv_hit_rate == 0.0

    def test_all_requests_complete_with_caching(self):
        eng = self._engine(prefix=True)
        for i in range(6):
            eng.submit(self._request(i))
        res = eng.run()
        assert all(r.is_finished for r in res.requests)
        assert all(r.generated_tokens == 16 for r in res.requests)
